#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "bgr/metrics/experiment.hpp"
#include "bgr/route/router.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

using testutil::ChainCircuit;

struct Fixture {
  ChainCircuit c;
  Placement pl;
  TechParams tech;
  FeedthroughAssignment assignment{0};

  Fixture() : pl(c.make_placement()), assignment(c.nl.net_count()) {
    assign_external_pins(c.nl, pl);
    const IdVector<NetId, double> order(
        static_cast<std::size_t>(c.nl.net_count()), 0.0);
    auto outcome = assign_feedthroughs(c.nl, pl, order, false);
    BGR_CHECK(outcome.complete());
    assignment = std::move(outcome.assignment);
  }
};

/// Independent recursive Elmore oracle over the tentative tree.
double oracle_sink_delay(const RoutingGraph& g, const TechParams& tech,
                         int pitch, const std::map<TerminalId, double>& loads,
                         std::int32_t sink_vertex) {
  const auto tree = g.tentative_tree_edges();
  std::map<std::int32_t, std::vector<std::pair<std::int32_t, std::int32_t>>> adj;
  for (const auto e : tree) {
    const auto& ed = g.graph().edge(e);
    adj[ed.u].emplace_back(e, ed.v);
    adj[ed.v].emplace_back(e, ed.u);
  }
  // Subtree capacitance below (edge, child).
  std::function<double(std::int32_t, std::int32_t)> subtree_cap =
      [&](std::int32_t v, std::int32_t from_edge) -> double {
    double cap = 0.0;
    const RouteVertexInfo& info = g.vertex_info(v);
    if (info.kind == RouteVertexKind::kTerminal) {
      const auto it = loads.find(info.terminal);
      if (it != loads.end()) cap += it->second;
    }
    if (from_edge >= 0) {
      cap += tech.wire_cap_pf(g.effective_length_um(from_edge), pitch) / 2.0;
    }
    for (const auto& [e, w] : adj[v]) {
      if (e == from_edge) continue;
      cap += tech.wire_cap_pf(g.effective_length_um(e), pitch) / 2.0 +
             subtree_cap(w, e);
    }
    return cap;
  };
  // Walk from driver to sink accumulating r · C_down.
  std::function<double(std::int32_t, std::int32_t, double)> walk =
      [&](std::int32_t v, std::int32_t from_edge, double acc) -> double {
    if (v == sink_vertex) return acc;
    for (const auto& [e, w] : adj[v]) {
      if (e == from_edge) continue;
      // subtree_cap(w, e) already includes the far-side half of e's wire
      // capacitance (π model: the near half is charged upstream of r(e)).
      const double down = subtree_cap(w, e);
      const double r = tech.wire_res_ohm(g.effective_length_um(e), pitch);
      const double res = walk(w, e, acc + r * down);
      if (res >= 0.0) return res;
    }
    return -1.0;
  };
  return walk(g.driver_vertex(), -1, 0.0);
}

TEST(Elmore, MatchesRecursiveOracle) {
  Fixture f;
  for (const NetId n : f.c.nl.nets()) {
    const RoutingGraph g(f.c.nl, f.pl, f.tech, f.assignment, n);
    std::map<TerminalId, double> loads;
    for (const TerminalId t : f.c.nl.net_terminals(n)) {
      loads[t] = f.c.nl.terminal_fanin_cap_pf(t);
    }
    const auto rc = g.elmore(f.tech, 1, [&](TerminalId t) {
      return loads.at(t);
    });
    for (const auto& [term, ps] : rc.sink_wire_ps) {
      std::int32_t sink_vertex = -1;
      for (const auto tv : g.terminal_vertices()) {
        if (g.vertex_info(tv).terminal == term) sink_vertex = tv;
      }
      ASSERT_GE(sink_vertex, 0);
      const double expected =
          oracle_sink_delay(g, f.tech, 1, loads, sink_vertex);
      EXPECT_NEAR(ps, expected, 1e-9)
          << f.c.nl.net(n).name << " sink " << f.c.nl.terminal_name(term);
    }
  }
}

TEST(Elmore, TotalCapMatchesEstimatedLength) {
  Fixture f;
  const RoutingGraph g(f.c.nl, f.pl, f.tech, f.assignment, f.c.n0);
  double loads = 0.0;
  for (const TerminalId t : f.c.nl.net_terminals(f.c.n0)) {
    loads += f.c.nl.terminal_fanin_cap_pf(t);
  }
  const auto rc = g.elmore(f.tech, 1, [&](TerminalId t) {
    return f.c.nl.terminal_fanin_cap_pf(t);
  });
  EXPECT_NEAR(rc.total_cap_pf,
              f.tech.wire_cap_pf(g.estimated_length_um()) + loads, 1e-9);
}

TEST(Elmore, DelaysPositiveAndBoundedByWorstCase) {
  Fixture f;
  const RoutingGraph g(f.c.nl, f.pl, f.tech, f.assignment, f.c.a);
  const auto rc = g.elmore(f.tech, 1, [&](TerminalId t) {
    return f.c.nl.terminal_fanin_cap_pf(t);
  });
  // Upper bound: total resistance times total capacitance.
  const double r_total = f.tech.wire_res_ohm(g.estimated_length_um());
  for (const auto& [term, ps] : rc.sink_wire_ps) {
    (void)term;
    EXPECT_GT(ps, 0.0);
    EXPECT_LE(ps, r_total * rc.total_cap_pf + 1e-9);
  }
}

TEST(Elmore, WiderPitchReducesWireDelay) {
  Fixture f;
  const RoutingGraph g(f.c.nl, f.pl, f.tech, f.assignment, f.c.n0);
  auto load = [&](TerminalId t) { return f.c.nl.terminal_fanin_cap_pf(t); };
  const auto narrow = g.elmore(f.tech, 1, load);
  const auto wide = g.elmore(f.tech, 3, load);
  // Resistance scales 1/w, capacitance scales w: for dominant-load nets the
  // r·C_load product shrinks... with wire-cap domination they cancel; at
  // minimum the wide wire is never *more* than w² times slower.
  ASSERT_EQ(narrow.sink_wire_ps.size(), wide.sink_wire_ps.size());
  EXPECT_GT(wide.total_cap_pf, narrow.total_cap_pf);
}

TEST(Elmore, DelayGraphPerSinkWeights) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  const double base = dg.net_arc_delay_for_cap(c.n0, 0.01);
  dg.set_net_rc(c.n0, 0.01, {{c.nl.net(c.n0).sinks[0], 7.5}});
  EXPECT_NEAR(dg.net_arc_delay(c.n0), base + 7.5, 1e-9);
  // Reverting to the lumped model clears the extra.
  dg.set_net_cap(c.n0, 0.01);
  EXPECT_NEAR(dg.net_arc_delay(c.n0), base, 1e-9);
}

TEST(Elmore, RouterRunsUnderRcModel) {
  const Dataset ds = generate_circuit(testutil::small_spec(55));
  RouterOptions options;
  options.delay_model = DelayModel::kElmoreRC;
  const RunResult rc = run_flow(ds, /*constrained=*/true, options);
  const RunResult lumped = run_flow(ds, /*constrained=*/true);
  EXPECT_GT(rc.delay_ps, 0.0);
  // Bipolar wires are wide and low-resistance: the RC correction must be
  // small (the paper's §2.1 justification for the capacitance model).
  EXPECT_GT(rc.delay_ps, lumped.delay_ps * 0.95);
  EXPECT_LT(rc.delay_ps, lumped.delay_ps * 1.20);
}

}  // namespace
}  // namespace bgr

// Unit tests for the exec/ subsystem: thread-pool lifecycle, exception
// propagation through parallel regions, edge-case ranges, and the
// determinism contract of parallel_for / parallel_reduce.
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "bgr/exec/exec_context.hpp"
#include "bgr/exec/parallel.hpp"
#include "bgr/exec/thread_pool.hpp"

namespace bgr {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.worker_count(), 3);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ShutdownWithoutTasks) {
  ThreadPool pool(4);  // destructor must not hang on an empty queue
}

TEST(ThreadPool, ZeroWorkersConstructsAndDestroys) {
  // ExecContext never builds a 0-worker pool (threads >= 2 when a pool
  // exists), but the degenerate size must not hang or crash.
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0);
}

TEST(ExecContext, SerialFallbackRunsInline) {
  ExecContext exec(1);
  EXPECT_TRUE(exec.serial());
  std::vector<int> hits(10, 0);
  parallel_for(exec, 10, [&](std::int64_t i) { ++hits[i]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(exec.stats().serial_regions, 1);
  EXPECT_EQ(exec.stats().items, 10);
}

TEST(ExecContext, EmptyRangeDoesNothing) {
  ExecContext exec(4);
  bool touched = false;
  parallel_for(exec, 0, [&](std::int64_t) { touched = true; });
  EXPECT_FALSE(touched);
  EXPECT_EQ(exec.stats().regions, 0);
  const int sum = parallel_reduce(
      exec, 0, 7, [](std::int64_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, 7);  // identity passes through untouched
}

TEST(ExecContext, OneElementRange) {
  ExecContext exec(4);
  int value = 0;
  parallel_for(exec, 1, [&](std::int64_t i) { value = static_cast<int>(i) + 41; });
  EXPECT_EQ(value, 41);
}

TEST(ExecContext, ParallelForCoversEveryIndexOnce) {
  ExecContext exec(4);
  constexpr std::int64_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(exec, kN, [&](std::int64_t i) { hits[i].fetch_add(1); },
               /*grain=*/7);
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ExecContext, ExceptionPropagatesToCaller) {
  ExecContext exec(4);
  EXPECT_THROW(
      parallel_for(exec, 1000,
                   [](std::int64_t i) {
                     if (i == 613) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool survives a throwing region and stays usable.
  std::atomic<int> count{0};
  parallel_for(exec, 100, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ExecContext, ExceptionPropagatesFromSerialFallback) {
  ExecContext exec(1);
  EXPECT_THROW(parallel_for(exec, 10,
                            [](std::int64_t i) {
                              if (i == 3) throw std::logic_error("serial");
                            }),
               std::logic_error);
}

// Non-associative floating-point sum: bit-identical across thread counts
// because the fold tree depends only on (n, grain).
TEST(ExecContext, ReduceIsBitIdenticalAcrossThreadCounts) {
  constexpr std::int64_t kN = 50'000;
  auto map = [](std::int64_t i) {
    return 1.0 / (static_cast<double>(i) + 0.3);
  };
  auto combine = [](double a, double b) { return a + b; };
  ExecContext serial(1);
  ExecContext two(2);
  ExecContext eight(8);
  const double s1 = parallel_reduce(serial, kN, 0.0, map, combine);
  const double s2 = parallel_reduce(two, kN, 0.0, map, combine);
  const double s8 = parallel_reduce(eight, kN, 0.0, map, combine);
  EXPECT_EQ(s1, s2);  // EQ, not NEAR: the contract is bit-identity
  EXPECT_EQ(s1, s8);
}

// First-wins argmin (the router's tie-break shape): the earliest index
// with the minimal score must win for every thread count.
TEST(ExecContext, ArgminTieBreakMatchesSerialScan) {
  constexpr std::int64_t kN = 9'973;
  auto score = [](std::int64_t i) { return (i * 37) % 100; };  // many ties
  struct Best {
    std::int64_t score = -1;
    std::int64_t index = -1;
  };
  auto map = [&](std::int64_t i) { return Best{score(i), i}; };
  auto combine = [](Best a, Best b) {
    if (a.index < 0) return b;
    if (b.index < 0) return a;
    if (b.score < a.score) return b;
    return a;  // ties and equals: earlier index wins
  };
  Best expect;
  for (std::int64_t i = 0; i < kN; ++i) expect = combine(expect, map(i));
  for (const int threads : {1, 2, 4, 8}) {
    ExecContext exec(threads);
    const Best got = parallel_reduce(exec, kN, Best{}, map, combine);
    EXPECT_EQ(got.index, expect.index) << "threads=" << threads;
    EXPECT_EQ(got.score, expect.score) << "threads=" << threads;
  }
}

TEST(ExecContext, StatsCountRegionsAndChunks) {
  ExecContext exec(4);
  parallel_for(exec, 1000, [](std::int64_t) {}, /*grain=*/100);
  EXPECT_EQ(exec.stats().regions, 1);
  EXPECT_EQ(exec.stats().chunks, 10);
  EXPECT_EQ(exec.stats().items, 1000);
  EXPECT_EQ(exec.stats().serial_regions, 0);
}

TEST(ExecContext, ZeroThreadsClampsToOne) {
  ExecContext exec(0);
  EXPECT_EQ(exec.thread_count(), 1);
  EXPECT_TRUE(exec.serial());
  EXPECT_GE(ExecContext::hardware_threads(), 1);
}

}  // namespace
}  // namespace bgr

#include "bgr/layout/feed_insertion.hpp"

#include <gtest/gtest.h>

namespace bgr {
namespace {

struct Fixture {
  Netlist nl{Library::make_ecl_default()};
  CellTypeId nor2 = nl.library().find("NOR2");
  CellTypeId feed = nl.library().find("FEED");

  Placement tight_placement(std::int32_t rows, std::int32_t width,
                            std::int32_t cells_per_row) {
    Placement pl(rows, width);
    for (std::int32_t r = 0; r < rows; ++r) {
      for (std::int32_t i = 0; i < cells_per_row; ++i) {
        const CellId c = nl.add_cell(
            "c" + std::to_string(r) + "_" + std::to_string(i), nor2);
        pl.place(nl, c, RowId{r}, i * 3);
      }
    }
    return pl;
  }
};

TEST(FeedDemand, PitchAccounting) {
  FeedDemand demand(3);
  demand.add_failure(RowId{0}, 1);
  demand.add_failure(RowId{0}, 2);
  demand.add_failure(RowId{0}, 2);
  demand.add_failure(RowId{2}, 1);
  EXPECT_EQ(demand.row_pitches(RowId{0}), 5);  // 1 + 2 + 2
  EXPECT_EQ(demand.row_pitches(RowId{1}), 0);
  EXPECT_EQ(demand.row_pitches(RowId{2}), 1);
  EXPECT_EQ(demand.widen_pitches(), 5);
  EXPECT_TRUE(demand.any());
}

TEST(FeedInsertion, WidensEveryRowByF) {
  Fixture f;
  Placement old = f.tight_placement(2, 12, 4);
  FeedDemand demand(2);
  demand.add_failure(RowId{0}, 1);
  demand.add_failure(RowId{0}, 2);  // F(0) = 3
  demand.add_failure(RowId{1}, 1);  // F(1) = 1 → F = 3
  const auto result = insert_feed_cells(f.nl, old, demand);
  EXPECT_EQ(result.widen_pitches, 3);
  EXPECT_EQ(result.placement.width(), 15);
  // Every row received exactly F pitches of feed cells.
  EXPECT_EQ(result.feed_cells_added, 6);
  result.placement.validate(f.nl);
  // Rows were fully blocked (width 12 = 4 cells × 3); widening by F = 3
  // leaves exactly 3 usable columns per row (feed cells do not block).
  for (std::int32_t r = 0; r < 2; ++r) {
    EXPECT_EQ(result.placement.free_column_count(RowId{r}), 3);
  }
}

TEST(FeedInsertion, MultiPitchGroupsAreAdjacentAndFlagged) {
  Fixture f;
  Placement old = f.tight_placement(1, 12, 4);
  FeedDemand demand(1);
  demand.add_failure(RowId{0}, 2);  // one 2-pitch group
  const auto result = insert_feed_cells(f.nl, old, demand);
  const Placement& pl = result.placement;
  // Find the flagged group: exactly two adjacent columns flagged 2.
  std::vector<std::int32_t> flagged;
  for (std::int32_t x = 0; x < pl.width(); ++x) {
    if (pl.column_flag(RowId{0}, x) == 2) flagged.push_back(x);
  }
  ASSERT_EQ(flagged.size(), 2u);
  EXPECT_EQ(flagged[1], flagged[0] + 1);
  EXPECT_FALSE(pl.column_blocked(RowId{0}, flagged[0]));
}

TEST(FeedInsertion, CarriesExistingFlagsShifted) {
  Fixture f;
  Placement old(1, 10);
  const CellId a = f.nl.add_cell("a", f.nor2);
  old.place(f.nl, a, RowId{0}, 0);
  // Free column 5 flagged width-2 before insertion.
  old.set_column_flag(RowId{0}, 5, 2);
  FeedDemand demand(1);
  demand.add_failure(RowId{0}, 1);
  const auto result = insert_feed_cells(f.nl, old, demand);
  // The flag must survive on some free column.
  std::int32_t count = 0;
  for (std::int32_t x = 0; x < result.placement.width(); ++x) {
    if (result.placement.column_flag(RowId{0}, x) == 2) ++count;
  }
  EXPECT_GE(count, 1);
}

TEST(FeedInsertion, ZeroDemandIsIdentityWidth) {
  Fixture f;
  Placement old = f.tight_placement(2, 12, 2);
  const FeedDemand demand(2);
  const auto result = insert_feed_cells(f.nl, old, demand);
  EXPECT_EQ(result.widen_pitches, 0);
  EXPECT_EQ(result.placement.width(), old.width());
  EXPECT_EQ(result.feed_cells_added, 0);
}

TEST(FeedInsertion, EvenSpacing) {
  Fixture f;
  // One row, 8 cells, demand of 4 singles: groups should spread out, not
  // cluster at one end.
  Placement old = f.tight_placement(1, 24, 8);
  FeedDemand demand(1);
  for (int i = 0; i < 4; ++i) demand.add_failure(RowId{0}, 1);
  const auto result = insert_feed_cells(f.nl, old, demand);
  std::vector<std::int32_t> feed_x;
  for (const CellId c : result.placement.row_cells(RowId{0})) {
    if (f.nl.cell_type(c).is_feed()) {
      feed_x.push_back(result.placement.placed(c).x);
    }
  }
  ASSERT_EQ(feed_x.size(), 4u);
  // No two feeds adjacent, and both halves of the row have feeds.
  for (std::size_t i = 1; i < feed_x.size(); ++i) {
    EXPECT_GT(feed_x[i] - feed_x[i - 1], 1);
  }
  EXPECT_LT(feed_x.front(), result.placement.width() / 2);
  EXPECT_GE(feed_x.back(), result.placement.width() / 2);
}

TEST(SweepFeedCellsAside, FeedsMoveToRowEnd) {
  Fixture f;
  Placement old(1, 20);
  const CellId a = f.nl.add_cell("a", f.nor2);
  const CellId fd = f.nl.add_cell("fd", f.feed);
  const CellId b = f.nl.add_cell("b", f.nor2);
  old.place(f.nl, a, RowId{0}, 0);
  old.place(f.nl, fd, RowId{0}, 3);
  old.place(f.nl, b, RowId{0}, 4);
  const Placement swept = sweep_feed_cells_aside(f.nl, old);
  // Logic packed left, feed at the end.
  EXPECT_EQ(swept.placed(a).x, 0);
  EXPECT_EQ(swept.placed(b).x, 3);
  EXPECT_EQ(swept.placed(fd).x, 6);
  swept.validate(f.nl);
}

}  // namespace
}  // namespace bgr

// Unit tests of the fuzzing harness itself: sampler determinism and
// domain validity, spec serialisation round-trips, mutator determinism,
// shrinker contracts, and the oracles' ability to both pass good inputs
// and flag planted bugs.

#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bgr/fuzz/fuzzer.hpp"
#include "bgr/fuzz/mutator.hpp"
#include "bgr/fuzz/oracles.hpp"
#include "bgr/fuzz/shrinker.hpp"
#include "bgr/fuzz/spec_sampler.hpp"
#include "bgr/io/io_error.hpp"

namespace bgr {
namespace {

TEST(SpecSampler, DeterministicInSeed) {
  for (const std::uint64_t seed : {1ull, 7ull, 500ull}) {
    EXPECT_EQ(spec_to_text(sample_spec(seed)), spec_to_text(sample_spec(seed)));
  }
  EXPECT_NE(spec_to_text(sample_spec(1)), spec_to_text(sample_spec(2)));
}

TEST(SpecSampler, StaysInsideTheValidDomain) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const CircuitSpec spec = sample_spec(seed);
    SCOPED_TRACE(spec.name);
    EXPECT_GE(spec.rows, 1);
    EXPECT_GE(spec.target_cells, 8);
    EXPECT_GE(spec.levels, 2);
    EXPECT_GE(spec.feed_every, 1);
    EXPECT_GE(spec.clock_pitch, 1);
    EXPECT_GE(spec.clock_buffers, 0);
    EXPECT_LE(spec.tightness_lo, spec.tightness_hi);
    EXPECT_GT(spec.tightness_lo, 0.0);
    EXPECT_GE(spec.gap_fraction, 0.0);
    EXPECT_LT(spec.gap_fraction, 1.0);
  }
}

TEST(SpecSampler, CoversTheExtremeRegimes) {
  bool one_row = false;
  bool overtight = false;
  bool wide_clock = false;
  bool blocked = false;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const CircuitSpec spec = sample_spec(seed);
    one_row = one_row || spec.rows == 1;
    overtight = overtight || spec.tightness_lo < 1.0;
    wide_clock = wide_clock || spec.clock_pitch >= 3;
    blocked = blocked || spec.blocks > 1;
  }
  EXPECT_TRUE(one_row);
  EXPECT_TRUE(overtight);
  EXPECT_TRUE(wide_clock);
  EXPECT_TRUE(blocked);
}

TEST(SpecText, RoundTrips) {
  const CircuitSpec spec = sample_spec(42);
  const std::string text = spec_to_text(spec);
  EXPECT_EQ(spec_to_text(spec_from_text(text)), text);
}

TEST(SpecText, RejectsGarbage) {
  EXPECT_THROW((void)spec_from_text("not a spec"), IoError);
  EXPECT_THROW((void)spec_from_text("bgr-fuzzspec 1\nrows 0\nend\n"), IoError);
  // Truncation (missing 'end') must be detected.
  std::string text = spec_to_text(sample_spec(1));
  text.resize(text.size() / 2);
  EXPECT_THROW((void)spec_from_text(text), IoError);
}

TEST(Mutator, DeterministicAndUsuallyDifferent) {
  const std::string base = "bgr-design 1\nchip rows 2 width 10\nend\n";
  int changed = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const std::string a = mutate_text(base, seed);
    EXPECT_EQ(a, mutate_text(base, seed));
    if (a != base) ++changed;
  }
  EXPECT_GE(changed, 40);
}

TEST(Shrinker, TextShrinkKeepsThePredicateTrue) {
  // Predicate: contains the token "needle". The shrinker must strip all
  // the chaff lines and fields around it.
  std::string text;
  for (int i = 0; i < 30; ++i) text += "chaff line " + std::to_string(i) + "\n";
  text += "keep needle here\n";
  for (int i = 0; i < 30; ++i) text += "more chaff " + std::to_string(i) + "\n";
  const auto has_needle = [](const std::string& t) {
    return t.find("needle") != std::string::npos;
  };
  const std::string shrunk = shrink_text(text, has_needle);
  EXPECT_TRUE(has_needle(shrunk));
  EXPECT_LT(shrunk.size(), 30u);
}

TEST(Shrinker, SpecShrinkReachesTheDomainFloor) {
  // Predicate always true: every knob must descend to its domain minimum.
  const CircuitSpec spec = sample_spec(9);
  const CircuitSpec shrunk =
      shrink_spec(spec, [](const CircuitSpec&) { return true; });
  EXPECT_EQ(shrunk.rows, 1);
  EXPECT_EQ(shrunk.target_cells, 8);
  EXPECT_EQ(shrunk.levels, 2);
  EXPECT_EQ(shrunk.path_constraints, 0);
}

TEST(Oracles, CleanDesignTextPasses) {
  const std::string text =
      "bgr-design 1\n"
      "name t\n"
      "chip rows 1 width 8\n"
      "cell c1 BUF1\n"
      "net n1\n"
      "padin PI n1 60 140\n"
      "conn n1 c1 I0\n"
      "place c1 0 0\n"
      "pad PI top 0 7\n"
      "end\n";
  const auto failure = check_design_text(text);
  EXPECT_FALSE(failure.has_value())
      << failure->oracle << ": " << failure->detail;
}

TEST(Oracles, MalformedDesignTextIsACleanRejection) {
  EXPECT_FALSE(check_design_text("garbage\n").has_value());
  EXPECT_FALSE(check_design_text("bgr-design 1\nfrob 1 2\nend\n").has_value());
}

TEST(Oracles, JsonRejectionsAndFixpointsAreClean) {
  EXPECT_FALSE(check_json_text("{\"a\": [1, 2.5, null]}").has_value());
  EXPECT_FALSE(check_json_text("{broken").has_value());
  EXPECT_FALSE(check_json_text(std::string(600, '[')).has_value());
}

TEST(FuzzOne, SpecModeIsDeterministic) {
  FuzzOptions options;
  options.alt_threads = 2;
  const FuzzCase a = fuzz_one(5, FuzzMode::kSpec, options, /*shrink=*/false);
  const FuzzCase b = fuzz_one(5, FuzzMode::kSpec, options, /*shrink=*/false);
  EXPECT_EQ(a.failure.has_value(), b.failure.has_value());
  EXPECT_EQ(a.repro, b.repro);
}

TEST(Campaign, SmallTextCampaignIsCleanAndCounted) {
  FuzzCampaign campaign;
  campaign.seed_lo = 1;
  campaign.seed_hi = 30;
  campaign.only_mode = FuzzMode::kJsonText;
  std::ostringstream log;
  EXPECT_EQ(run_campaign(campaign, log), 0);
  EXPECT_NE(log.str().find("30 cases"), std::string::npos);
}

}  // namespace
}  // namespace bgr

// Replays the minimized fuzz corpus (tests/fuzz_corpus/): every entry is
// an input that once crashed, hung, or silently corrupted the pipeline,
// plus an .expect sidecar stating how it must behave now. See the corpus
// README for the format.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bgr/fuzz/oracles.hpp"
#include "bgr/fuzz/spec_sampler.hpp"
#include "bgr/io/design_io.hpp"
#include "bgr/io/io_error.hpp"
#include "bgr/io/route_io.hpp"
#include "bgr/obs/json.hpp"

namespace bgr {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

struct Expectation {
  bool ok = false;
  std::string substring;  // for error expectations
};

Expectation parse_expect(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::getline(is, line);
  Expectation out;
  if (line == "ok") {
    out.ok = true;
  } else {
    constexpr const char* kPrefix = "error ";
    EXPECT_EQ(line.rfind(kPrefix, 0), 0u)
        << ".expect must start with 'ok' or 'error <substring>', got: "
        << line;
    out.substring = line.substr(6);
  }
  return out;
}

/// Runs the input through the parser matching its format, returning the
/// diagnostic text ("" on acceptance). Non-IoError exceptions propagate —
/// they fail the test, which is the point.
std::string rejection_of(const std::string& input) {
  try {
    if (input.rfind("bgr-fuzzspec 1", 0) == 0) {
      (void)spec_from_text(input);
    } else if (input.rfind("bgr-design 1", 0) == 0) {
      std::istringstream is(input);
      (void)read_design(is, "corpus");
    } else if (input.rfind("bgr-route 1", 0) == 0) {
      std::istringstream is(input);
      (void)read_route(is, "corpus");
    } else {
      (void)json_parse(input);
    }
    return "";
  } catch (const IoError& e) {
    return e.what();
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    if (what.rfind("JSON parse error", 0) == 0) return what;
    throw;
  }
}

/// The oracle battery for the input's format; nullopt means clean.
std::optional<FuzzFailure> oracles_of(const std::string& input) {
  if (input.rfind("bgr-fuzzspec 1", 0) == 0) {
    FuzzOptions options;
    options.alt_threads = 2;  // keep corpus replay fast
    return check_spec(spec_from_text(input), options);
  }
  if (input.rfind("bgr-design 1", 0) == 0) return check_design_text(input);
  if (input.rfind("bgr-route 1", 0) == 0) return check_route_text(input);
  return check_json_text(input);
}

fs::path corpus_dir() { return fs::path(BGR_FUZZ_CORPUS_DIR); }

std::vector<fs::path> corpus_inputs() {
  std::vector<fs::path> inputs;
  for (const auto& entry : fs::directory_iterator(corpus_dir())) {
    if (entry.path().extension() == ".txt") inputs.push_back(entry.path());
  }
  std::sort(inputs.begin(), inputs.end());
  return inputs;
}

TEST(FuzzCorpus, HasEntries) {
  ASSERT_TRUE(fs::exists(corpus_dir())) << corpus_dir();
  EXPECT_GE(corpus_inputs().size(), 8u);
}

TEST(FuzzCorpus, EveryEntryBehavesAsExpected) {
  for (const fs::path& path : corpus_inputs()) {
    SCOPED_TRACE(path.filename().string());
    fs::path expect_path = path;
    expect_path.replace_extension(".expect");
    ASSERT_TRUE(fs::exists(expect_path))
        << path << " has no .expect sidecar";
    const std::string input = read_file(path);
    const Expectation expect = parse_expect(read_file(expect_path));

    if (expect.ok) {
      const auto failure = oracles_of(input);
      EXPECT_FALSE(failure.has_value())
          << "oracle " << (failure ? failure->oracle : "") << ": "
          << (failure ? failure->detail : "");
    } else {
      const std::string diagnostic = rejection_of(input);
      ASSERT_FALSE(diagnostic.empty())
          << "input was accepted but must be rejected";
      EXPECT_NE(diagnostic.find(expect.substring), std::string::npos)
          << "diagnostic '" << diagnostic << "' lacks '" << expect.substring
          << "'";
    }
  }
}

}  // namespace
}  // namespace bgr

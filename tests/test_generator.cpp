#include "bgr/gen/generator.hpp"

#include <gtest/gtest.h>

#include "bgr/io/design_io.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

TEST(Generator, DatasetNamesMatchPaper) {
  EXPECT_EQ(dataset_names(),
            (std::vector<std::string>{"C1P1", "C1P2", "C2P1", "C2P2", "C3P1"}));
}

TEST(Generator, DeterministicPerSeed) {
  const Dataset a = generate_circuit(testutil::small_spec(3));
  const Dataset b = generate_circuit(testutil::small_spec(3));
  EXPECT_EQ(a.netlist.cell_count(), b.netlist.cell_count());
  EXPECT_EQ(a.netlist.net_count(), b.netlist.net_count());
  EXPECT_EQ(a.netlist.terminal_count(), b.netlist.terminal_count());
  ASSERT_EQ(a.constraints.size(), b.constraints.size());
  for (std::size_t i = 0; i < a.constraints.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.constraints[i].limit_ps, b.constraints[i].limit_ps);
  }
  // Placement identical cell by cell.
  for (const CellId c : a.netlist.cells()) {
    EXPECT_EQ(a.placement.placed(c).row, b.placement.placed(c).row);
    EXPECT_EQ(a.placement.placed(c).x, b.placement.placed(c).x);
  }
}

TEST(Generator, SeedsChangeCircuit) {
  const Dataset a = generate_circuit(testutil::small_spec(3));
  const Dataset b = generate_circuit(testutil::small_spec(4));
  bool differs = a.netlist.cell_count() != b.netlist.cell_count();
  if (!differs) {
    for (const CellId c : a.netlist.cells()) {
      if (a.placement.placed(c).x != b.placement.placed(c).x) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, StructureValidates) {
  const Dataset ds = generate_circuit(testutil::small_spec(7));
  ds.netlist.validate();
  ds.placement.validate(ds.netlist);
  EXPECT_GE(ds.netlist.cell_count(), 100);
  EXPECT_GT(ds.netlist.net_count(), 0);
  EXPECT_FALSE(ds.constraints.empty());
}

TEST(Generator, RequestedFeatureCounts) {
  const CircuitSpec spec = testutil::small_spec(8);
  const Dataset ds = generate_circuit(spec);
  std::int32_t diff_pairs = 0;
  std::int32_t multi_pitch = 0;
  for (const NetId n : ds.netlist.nets()) {
    const Net& net = ds.netlist.net(n);
    if (net.is_differential() && net.diff_primary) ++diff_pairs;
    if (net.pitch_width > 1) ++multi_pitch;
  }
  EXPECT_EQ(diff_pairs, spec.diff_pairs);
  EXPECT_EQ(multi_pitch, spec.clock_buffers);
}

TEST(Generator, ConstraintsReferenceRealEndpoints) {
  const Dataset ds = generate_circuit(testutil::small_spec(9));
  DelayGraph dg(ds.netlist);
  for (const PathConstraint& pc : ds.constraints) {
    EXPECT_GT(pc.limit_ps, 0.0);
    ASSERT_EQ(pc.sources.size(), 1u);
    ASSERT_EQ(pc.sinks.size(), 1u);
    // Source reaches sink in the delay graph.
    const auto lp = dg.dag().longest_from({dg.vertex_of(pc.sources[0])});
    EXPECT_NE(lp[static_cast<std::size_t>(dg.vertex_of(pc.sinks[0]))],
              Dag::kMinusInf)
        << pc.name;
  }
}

TEST(Generator, ConstraintsAreTightButPlausible) {
  const Dataset ds = generate_circuit(testutil::small_spec(10));
  DelayGraph dg(ds.netlist);
  // Zero-wire delays must satisfy every constraint (wire budget positive).
  TimingAnalyzer an(dg, ds.constraints);
  for (const ConstraintId p : an.constraints()) {
    EXPECT_GT(an.margin_ps(p), 0.0) << "no wire budget at all";
  }
}

TEST(Generator, P2SweepsFeedsAside) {
  const Dataset p1 = make_dataset("C1P1");
  const Dataset p2 = make_dataset("C1P2");
  EXPECT_EQ(p1.netlist.cell_count(), p2.netlist.cell_count());
  // In P2, every row's feed cells sit behind all of its logic cells.
  for (std::int32_t r = 0; r < p2.placement.row_count(); ++r) {
    bool seen_feed = false;
    for (const CellId c : p2.placement.row_cells(RowId{r})) {
      const bool is_feed = p2.netlist.cell_type(c).is_feed();
      if (seen_feed) {
        EXPECT_TRUE(is_feed) << "logic cell after feed cells in P2 row " << r;
      }
      seen_feed = seen_feed || is_feed;
    }
  }
}

TEST(Generator, PaperDatasetsBuild) {
  for (const std::string& name : dataset_names()) {
    const Dataset ds = make_dataset(name);
    EXPECT_EQ(ds.name, name);
    ds.netlist.validate();
    ds.placement.validate(ds.netlist);
  }
}

TEST(Generator, UnknownNameRejected) {
  EXPECT_THROW((void)make_dataset("C9P1"), CheckError);
  EXPECT_THROW((void)make_dataset("C1P3"), CheckError);
  EXPECT_THROW((void)make_dataset("bogus"), CheckError);
}

}  // namespace
}  // namespace bgr

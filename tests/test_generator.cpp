#include "bgr/gen/generator.hpp"

#include <gtest/gtest.h>

#include "bgr/io/design_io.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

TEST(Generator, DatasetNamesMatchPaper) {
  EXPECT_EQ(dataset_names(),
            (std::vector<std::string>{"C1P1", "C1P2", "C2P1", "C2P2", "C3P1"}));
}

TEST(Generator, DeterministicPerSeed) {
  const Dataset a = generate_circuit(testutil::small_spec(3));
  const Dataset b = generate_circuit(testutil::small_spec(3));
  EXPECT_EQ(a.netlist.cell_count(), b.netlist.cell_count());
  EXPECT_EQ(a.netlist.net_count(), b.netlist.net_count());
  EXPECT_EQ(a.netlist.terminal_count(), b.netlist.terminal_count());
  ASSERT_EQ(a.constraints.size(), b.constraints.size());
  for (std::size_t i = 0; i < a.constraints.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.constraints[i].limit_ps, b.constraints[i].limit_ps);
  }
  // Placement identical cell by cell.
  for (const CellId c : a.netlist.cells()) {
    EXPECT_EQ(a.placement.placed(c).row, b.placement.placed(c).row);
    EXPECT_EQ(a.placement.placed(c).x, b.placement.placed(c).x);
  }
}

TEST(Generator, SeedsChangeCircuit) {
  const Dataset a = generate_circuit(testutil::small_spec(3));
  const Dataset b = generate_circuit(testutil::small_spec(4));
  bool differs = a.netlist.cell_count() != b.netlist.cell_count();
  if (!differs) {
    for (const CellId c : a.netlist.cells()) {
      if (a.placement.placed(c).x != b.placement.placed(c).x) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, StructureValidates) {
  const Dataset ds = generate_circuit(testutil::small_spec(7));
  ds.netlist.validate();
  ds.placement.validate(ds.netlist);
  EXPECT_GE(ds.netlist.cell_count(), 100);
  EXPECT_GT(ds.netlist.net_count(), 0);
  EXPECT_FALSE(ds.constraints.empty());
}

TEST(Generator, RequestedFeatureCounts) {
  const CircuitSpec spec = testutil::small_spec(8);
  const Dataset ds = generate_circuit(spec);
  std::int32_t diff_pairs = 0;
  std::int32_t multi_pitch = 0;
  for (const NetId n : ds.netlist.nets()) {
    const Net& net = ds.netlist.net(n);
    if (net.is_differential() && net.diff_primary) ++diff_pairs;
    if (net.pitch_width > 1) ++multi_pitch;
  }
  EXPECT_EQ(diff_pairs, spec.diff_pairs);
  EXPECT_EQ(multi_pitch, spec.clock_buffers);
}

TEST(Generator, ConstraintsReferenceRealEndpoints) {
  const Dataset ds = generate_circuit(testutil::small_spec(9));
  DelayGraph dg(ds.netlist);
  for (const PathConstraint& pc : ds.constraints) {
    EXPECT_GT(pc.limit_ps, 0.0);
    ASSERT_EQ(pc.sources.size(), 1u);
    ASSERT_EQ(pc.sinks.size(), 1u);
    // Source reaches sink in the delay graph.
    const auto lp = dg.dag().longest_from({dg.vertex_of(pc.sources[0])});
    EXPECT_NE(lp[static_cast<std::size_t>(dg.vertex_of(pc.sinks[0]))],
              Dag::kMinusInf)
        << pc.name;
  }
}

TEST(Generator, ConstraintsAreTightButPlausible) {
  const Dataset ds = generate_circuit(testutil::small_spec(10));
  DelayGraph dg(ds.netlist);
  // Zero-wire delays must satisfy every constraint (wire budget positive).
  TimingAnalyzer an(dg, ds.constraints);
  for (const ConstraintId p : an.constraints()) {
    EXPECT_GT(an.margin_ps(p), 0.0) << "no wire budget at all";
  }
}

TEST(Generator, P2SweepsFeedsAside) {
  const Dataset p1 = make_dataset("C1P1");
  const Dataset p2 = make_dataset("C1P2");
  EXPECT_EQ(p1.netlist.cell_count(), p2.netlist.cell_count());
  // In P2, every row's feed cells sit behind all of its logic cells.
  for (std::int32_t r = 0; r < p2.placement.row_count(); ++r) {
    bool seen_feed = false;
    for (const CellId c : p2.placement.row_cells(RowId{r})) {
      const bool is_feed = p2.netlist.cell_type(c).is_feed();
      if (seen_feed) {
        EXPECT_TRUE(is_feed) << "logic cell after feed cells in P2 row " << r;
      }
      seen_feed = seen_feed || is_feed;
    }
  }
}

TEST(Generator, PaperDatasetsBuild) {
  for (const std::string& name : dataset_names()) {
    const Dataset ds = make_dataset(name);
    EXPECT_EQ(ds.name, name);
    ds.netlist.validate();
    ds.placement.validate(ds.netlist);
  }
}

TEST(Generator, UnknownNameRejected) {
  EXPECT_THROW((void)make_dataset("C9P1"), CheckError);
  EXPECT_THROW((void)make_dataset("C1P3"), CheckError);
  EXPECT_THROW((void)make_dataset("bogus"), CheckError);
}

// ---- Block-structured scale presets (DESIGN.md §13) ----

CircuitSpec blocked_spec(std::uint64_t seed, std::int32_t blocks) {
  CircuitSpec spec;
  spec.name = "B" + std::to_string(blocks);
  spec.seed = seed;
  spec.blocks = blocks;
  spec.rows = 4;
  spec.target_cells = 250 * blocks;
  spec.levels = 6;
  spec.primary_inputs = 8;
  spec.primary_outputs = 8;
  spec.diff_pairs = blocks;
  spec.clock_buffers = 1;
  spec.path_constraints = 10;
  return spec;
}

/// Band of block `blk`: rows [blk·(rows+1), blk·(rows+1)+rows).
bool row_in_band(std::int32_t row, std::int32_t blk, std::int32_t rows) {
  const std::int32_t base = blk * (rows + 1);
  return row >= base && row < base + rows;
}

TEST(Generator, ScaleDatasetNames) {
  EXPECT_EQ(scale_dataset_names(),
            (std::vector<std::string>{"10k", "100k", "1M"}));
}

TEST(Generator, BlockedStructureValidates) {
  const CircuitSpec spec = blocked_spec(21, 4);
  const Dataset ds = generate_circuit(spec);
  ds.netlist.validate();
  ds.placement.validate(ds.netlist);
  ASSERT_EQ(ds.placement.row_count(), spec.blocks * (spec.rows + 1) - 1);
  // Separator rows stay empty and every cell stays inside its own band —
  // cells carry their block index as a "b<k>_" name prefix.
  for (std::int32_t r = spec.rows; r < ds.placement.row_count();
       r += spec.rows + 1) {
    EXPECT_TRUE(ds.placement.row_cells(RowId{r}).empty())
        << "separator row " << r << " not empty";
  }
  for (const CellId c : ds.netlist.cells()) {
    if (ds.netlist.cell_type(c).is_feed()) continue;  // placement-time fill
    const std::string& name = ds.netlist.cell(c).name;
    ASSERT_EQ(name[0], 'b') << name;
    const std::int32_t blk = std::stoi(name.substr(1));
    EXPECT_TRUE(row_in_band(ds.placement.placed(c).row.index(), blk, spec.rows))
        << name << " in row " << ds.placement.placed(c).row.index();
  }
}

TEST(Generator, BlockedDeterministicPerSeed) {
  const Dataset a = generate_circuit(blocked_spec(22, 3));
  const Dataset b = generate_circuit(blocked_spec(22, 3));
  ASSERT_EQ(a.netlist.cell_count(), b.netlist.cell_count());
  EXPECT_EQ(a.netlist.net_count(), b.netlist.net_count());
  EXPECT_EQ(a.netlist.terminal_count(), b.netlist.terminal_count());
  for (const CellId c : a.netlist.cells()) {
    EXPECT_EQ(a.placement.placed(c).row, b.placement.placed(c).row);
    EXPECT_EQ(a.placement.placed(c).x, b.placement.placed(c).x);
  }
}

TEST(Generator, PadsOnlyTouchEdgeBlocks) {
  // Pads reach the chip edges, so a pad on a middle block's net would span
  // every band in between and glue their shards together: input pads (top
  // edge) may only serve the last block, output pads (bottom edge) only
  // block 0. Orphan cones in other blocks must park on sink registers.
  const CircuitSpec spec = blocked_spec(23, 5);
  const Dataset ds = generate_circuit(spec);
  for (const TerminalId t : ds.netlist.terminals()) {
    const Terminal& term = ds.netlist.terminal(t);
    if (term.kind == TerminalKind::kCellPin) continue;
    const std::int32_t blk =
        term.kind == TerminalKind::kPadIn ? spec.blocks - 1 : 0;
    const Net& net = ds.netlist.net(term.net);
    auto check = [&](TerminalId other) {
      const Terminal& o = ds.netlist.terminal(other);
      if (o.kind != TerminalKind::kCellPin) return;
      EXPECT_TRUE(
          row_in_band(ds.placement.placed(o.cell).row.index(), blk, spec.rows))
          << "pad " << term.pad_name << " reaches cell "
          << ds.netlist.cell(o.cell).name;
    };
    check(net.driver);
    for (const TerminalId s : net.sinks) check(s);
  }
}

TEST(Generator, PadAwareWidthFloorRegression) {
  // Tiny blocks with many pads: the per-band packing need is far below the
  // pad count, so without the global pad floor the edge columns overflow.
  CircuitSpec spec = blocked_spec(24, 5);
  spec.rows = 3;
  spec.target_cells = 150;
  spec.primary_inputs = 60;
  spec.primary_outputs = 60;
  const Dataset ds = generate_circuit(spec);
  ds.netlist.validate();
  ds.placement.validate(ds.netlist);
  EXPECT_GE(ds.placement.width(), 60);
}

TEST(Generator, ScaleTenKPresetBuilds) {
  const Dataset ds = make_dataset("10k");
  EXPECT_EQ(ds.name, "10k");
  ds.netlist.validate();
  ds.placement.validate(ds.netlist);
  std::int32_t logic = 0;
  for (const CellId c : ds.netlist.cells()) {
    if (!ds.netlist.cell_type(c).is_feed()) ++logic;
  }
  EXPECT_GE(logic, 10000);
  for (std::int32_t r = ds.spec.rows; r < ds.placement.row_count();
       r += ds.spec.rows + 1) {
    EXPECT_TRUE(ds.placement.row_cells(RowId{r}).empty());
  }
}

TEST(Generator, ScalePresetSpecsAreBlocked) {
  for (const std::string& name : scale_dataset_names()) {
    SCOPED_TRACE(name);
    const CircuitSpec spec = name == "10k"    ? scale_10k_spec()
                             : name == "100k" ? scale_100k_spec()
                                              : scale_1m_spec();
    EXPECT_EQ(spec.name, name);
    EXPECT_GT(spec.blocks, 1);
    EXPECT_GT(spec.target_cells / spec.blocks, 100);
  }
}

}  // namespace
}  // namespace bgr

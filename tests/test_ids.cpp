#include "bgr/common/ids.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace bgr {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  NetId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NetId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  CellId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42);
  EXPECT_EQ(id.index(), 42u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(NetId{1}, NetId{2});
  EXPECT_EQ(NetId{3}, NetId{3});
  EXPECT_NE(NetId{3}, NetId{4});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NetId, CellId>);
  static_assert(!std::is_same_v<RowId, ChannelId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<NetId> set;
  set.insert(NetId{1});
  set.insert(NetId{1});
  set.insert(NetId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(IdVector, PushBackReturnsSequentialIds) {
  IdVector<NetId, int> v;
  EXPECT_EQ(v.push_back(10), NetId{0});
  EXPECT_EQ(v.push_back(20), NetId{1});
  EXPECT_EQ(v[NetId{0}], 10);
  EXPECT_EQ(v[NetId{1}], 20);
  EXPECT_EQ(v.size(), 2u);
}

TEST(IdVector, AtChecksBounds) {
  IdVector<NetId, int> v(2, 7);
  EXPECT_EQ(v.at(NetId{1}), 7);
  EXPECT_THROW((void)v.at(NetId{5}), std::out_of_range);
}

TEST(IdRange, IteratesAllIds) {
  std::vector<int> seen;
  for (const NetId id : IdRange<NetId>(4)) {
    seen.push_back(id.value());
  }
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(IdRange, EmptyRange) {
  int count = 0;
  for (const NetId id : IdRange<NetId>(0)) {
    (void)id;
    ++count;
  }
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace bgr

// Differential hardening of the incremental STA engine: on dozens of
// generated designs across seeds, delay models and thread counts, after
// *every* committed edge deletion the incrementally maintained arrival
// times, constraint margins and per-net slacks must be bit-identical to a
// from-scratch recompute by an independent full-sweep analyzer.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "bgr/gen/generator.hpp"
#include "bgr/route/router.hpp"

namespace bgr {
namespace {

/// Small but non-trivial circuit: enough constraints and differential
/// pairs to exercise every update path while keeping the per-deletion
/// cross-check (a full analyzer recompute) affordable.
CircuitSpec small_spec(std::uint64_t seed) {
  CircuitSpec spec;
  spec.name = "DIFF" + std::to_string(seed);
  spec.seed = seed;
  spec.rows = 5;
  spec.target_cells = 70;
  spec.levels = 6;
  spec.primary_inputs = 6;
  spec.primary_outputs = 6;
  spec.diff_pairs = 2;
  spec.clock_buffers = 1;
  spec.path_constraints = 8;
  return spec;
}

/// Routes one generated design with the incremental analyzer and, after
/// every deletion, compares against a reference analyzer that recomputes
/// everything from scratch. Returns the number of deletion steps checked.
std::int64_t check_design(std::uint64_t seed, DelayModel model,
                          std::int32_t threads) {
  Dataset design = generate_circuit(small_spec(seed));

  RouterOptions options;
  options.threads = threads;
  options.delay_model = model;
  options.incremental_sta = true;

  std::unique_ptr<GlobalRouter> router;
  std::unique_ptr<TimingAnalyzer> reference;
  std::int64_t steps = 0;
  options.deletion_observer = [&](NetId, std::int32_t) {
    if (::testing::Test::HasFatalFailure()) return;  // don't spam after one
    ++steps;
    // The reference shares the router's delay graph (it only reads it) but
    // recomputes arrival times from scratch on every step.
    if (!reference) {
      reference = std::make_unique<TimingAnalyzer>(
          router->delay_graph(), design.constraints, nullptr);
    } else {
      reference->update_all();
    }
    const TimingAnalyzer& incremental = router->analyzer();
    ASSERT_EQ(incremental.constraint_count(), reference->constraint_count());
    for (const ConstraintId p : incremental.constraints()) {
      ASSERT_EQ(incremental.margin_ps(p), reference->margin_ps(p))
          << "margin diverged, constraint " << p.index() << " step " << steps;
      const auto& inc_lp = incremental.longest_prefix(p);
      const auto& ref_lp = reference->longest_prefix(p);
      ASSERT_EQ(inc_lp, ref_lp)
          << "arrival times diverged, constraint " << p.index() << " step "
          << steps;
    }
    const auto inc_slacks = incremental.net_slacks();
    const auto ref_slacks = reference->net_slacks();
    ASSERT_EQ(inc_slacks.size(), ref_slacks.size());
    for (std::size_t i = 0; i < inc_slacks.size(); ++i) {
      ASSERT_EQ(inc_slacks[NetId{static_cast<std::int32_t>(i)}],
                ref_slacks[NetId{static_cast<std::int32_t>(i)}])
          << "net slack diverged, net " << i << " step " << steps;
    }
  };

  router = std::make_unique<GlobalRouter>(design.netlist,
                                          std::move(design.placement),
                                          design.tech, design.constraints,
                                          options);
  (void)router->run();
  EXPECT_GT(steps, 0) << "observer never fired (seed " << seed << ")";
  return steps;
}

TEST(IncrementalStaDifferential, LumpedSeedsA) {
  for (std::uint64_t seed = 1; seed <= 11; ++seed) {
    check_design(seed, DelayModel::kLumpedC, /*threads=*/1);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(IncrementalStaDifferential, LumpedSeedsB) {
  for (std::uint64_t seed = 12; seed <= 22; ++seed) {
    check_design(seed, DelayModel::kLumpedC, /*threads=*/1);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(IncrementalStaDifferential, RcSeedsA) {
  for (std::uint64_t seed = 1; seed <= 11; ++seed) {
    check_design(seed, DelayModel::kElmoreRC, /*threads=*/1);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(IncrementalStaDifferential, RcSeedsB) {
  for (std::uint64_t seed = 12; seed <= 22; ++seed) {
    check_design(seed, DelayModel::kElmoreRC, /*threads=*/1);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(IncrementalStaDifferential, TwoThreads) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    check_design(seed, DelayModel::kLumpedC, /*threads=*/2);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(IncrementalStaDifferential, EightThreads) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    check_design(seed, DelayModel::kLumpedC, /*threads=*/8);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// The flag must not change what gets routed: incremental on and off give
/// the same RouteOutcome (and the same per-phase deletion trace) on fresh
/// copies of the same design.
TEST(IncrementalStaDifferential, OutcomeMatchesFullRecompute) {
  for (const std::uint64_t seed : {3u, 7u}) {
    for (const DelayModel model : {DelayModel::kLumpedC,
                                   DelayModel::kElmoreRC}) {
      RouteOutcome outcomes[2];
      for (const bool incremental : {false, true}) {
        Dataset design = generate_circuit(small_spec(seed));
        RouterOptions options;
        options.delay_model = model;
        options.incremental_sta = incremental;
        GlobalRouter router(design.netlist, std::move(design.placement),
                            design.tech, design.constraints, options);
        outcomes[incremental ? 1 : 0] = router.run();
      }
      const RouteOutcome& off = outcomes[0];
      const RouteOutcome& on = outcomes[1];
      EXPECT_EQ(off.critical_delay_ps, on.critical_delay_ps);
      EXPECT_EQ(off.total_length_um, on.total_length_um);
      EXPECT_EQ(off.worst_margin_ps, on.worst_margin_ps);
      EXPECT_EQ(off.violated_constraints, on.violated_constraints);
      ASSERT_EQ(off.phases.size(), on.phases.size());
      for (std::size_t i = 0; i < off.phases.size(); ++i) {
        EXPECT_EQ(off.phases[i].deletions, on.phases[i].deletions);
        EXPECT_EQ(off.phases[i].reroutes, on.phases[i].reroutes);
        EXPECT_EQ(off.phases[i].sum_max_density, on.phases[i].sum_max_density);
      }
    }
  }
}

}  // namespace
}  // namespace bgr

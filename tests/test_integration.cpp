#include <gtest/gtest.h>

#include "bgr/metrics/experiment.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

/// Full-flow integration over generated circuits: the paper's headline
/// behaviours must hold in shape.
class FlowProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Dataset dataset_ = generate_circuit(testutil::small_spec(GetParam()));
};

TEST_P(FlowProperty, BothModesComplete) {
  const RunResult con = run_flow(dataset_, /*constrained=*/true);
  const RunResult unc = run_flow(dataset_, /*constrained=*/false);
  EXPECT_GT(con.delay_ps, 0.0);
  EXPECT_GT(unc.delay_ps, 0.0);
  EXPECT_GT(con.area_mm2, 0.0);
  EXPECT_GT(con.length_mm, 0.0);
  // The half-perimeter bound really is a lower bound on the final delay.
  EXPECT_GE(con.delay_ps, con.lower_bound_ps);
  EXPECT_GE(unc.delay_ps, unc.lower_bound_ps);
}

TEST_P(FlowProperty, ConstrainedModeDoesNotBlowUpArea) {
  // Paper §5: "the area was almost unchanged".
  const RunResult con = run_flow(dataset_, true);
  const RunResult unc = run_flow(dataset_, false);
  EXPECT_LT(con.area_mm2, unc.area_mm2 * 1.15);
}

TEST_P(FlowProperty, RunFlowIsRepeatable) {
  const RunResult a = run_flow(dataset_, true);
  const RunResult b = run_flow(dataset_, true);
  EXPECT_DOUBLE_EQ(a.delay_ps, b.delay_ps);
  EXPECT_DOUBLE_EQ(a.area_mm2, b.area_mm2);
  EXPECT_DOUBLE_EQ(a.length_mm, b.length_mm);
}

TEST_P(FlowProperty, DatasetIsNotMutatedByRuns) {
  const auto cells_before = dataset_.netlist.cell_count();
  const auto width_before = dataset_.placement.width();
  (void)run_flow(dataset_, true);
  EXPECT_EQ(dataset_.netlist.cell_count(), cells_before);
  EXPECT_EQ(dataset_.placement.width(), width_before);
}

TEST_P(FlowProperty, PhaseToggleAblationsRun) {
  RouterOptions options;
  options.enable_violation_recovery = false;
  options.enable_delay_improvement = false;
  options.enable_area_improvement = false;
  const RunResult bare = run_flow(dataset_, true, options);
  EXPECT_GT(bare.delay_ps, 0.0);
  for (const PhaseStats& ph : bare.phases) {
    if (ph.name != "initial") {
      EXPECT_EQ(ph.deletions, 0);
      EXPECT_EQ(ph.reroutes, 0);
    }
  }
}

TEST_P(FlowProperty, CriteriaAblationsRun) {
  RouterOptions no_density;
  no_density.use_density_criteria = false;
  const RunResult a = run_flow(dataset_, true, no_density);
  EXPECT_GT(a.delay_ps, 0.0);
  RouterOptions no_delay;
  no_delay.use_delay_criteria = false;
  const RunResult b = run_flow(dataset_, true, no_delay);
  EXPECT_GT(b.delay_ps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowProperty, ::testing::Values(101u, 202u));

/// The paper's aggregate claim on its own datasets, checked in miniature:
/// averaged over seeds, the constrained router must beat the unconstrained
/// one on delay.
TEST(FlowAggregate, ConstrainedBeatsUnconstrainedOnAverage) {
  double gain = 0.0;
  for (const std::uint64_t seed : {41u, 42u, 43u}) {
    const Dataset ds = generate_circuit(testutil::small_spec(seed));
    const RunResult con = run_flow(ds, true);
    const RunResult unc = run_flow(ds, false);
    gain += unc.delay_ps - con.delay_ps;
  }
  EXPECT_GT(gain, 0.0);
}

}  // namespace
}  // namespace bgr

#include "bgr/common/interval.hpp"

#include <gtest/gtest.h>

#include "bgr/common/rng.hpp"

namespace bgr {
namespace {

TEST(Interval, DefaultIsEmpty) {
  IntInterval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.length(), 0);
}

TEST(Interval, PointHasLengthOne) {
  const auto iv = IntInterval::point(5);
  EXPECT_FALSE(iv.empty());
  EXPECT_EQ(iv.length(), 1);
  EXPECT_TRUE(iv.contains(5));
  EXPECT_FALSE(iv.contains(4));
}

TEST(Interval, SpanningNormalizesOrder) {
  const auto iv = IntInterval::spanning(9, 3);
  EXPECT_EQ(iv.lo, 3);
  EXPECT_EQ(iv.hi, 9);
  EXPECT_EQ(iv.length(), 7);
}

TEST(Interval, OverlapCases) {
  const IntInterval a{2, 5};
  EXPECT_TRUE(a.overlaps({5, 8}));
  EXPECT_TRUE(a.overlaps({0, 2}));
  EXPECT_FALSE(a.overlaps({6, 8}));
  EXPECT_FALSE(a.overlaps(IntInterval{}));
}

TEST(Interval, IntersectAndMerge) {
  const IntInterval a{2, 6};
  const IntInterval b{4, 9};
  EXPECT_EQ(a.intersect(b), (IntInterval{4, 6}));
  EXPECT_EQ(a.merge(b), (IntInterval{2, 9}));
  EXPECT_TRUE(a.intersect({7, 9}).empty());
  EXPECT_EQ(a.merge(IntInterval{}), a);
}

TEST(Interval, ContainsInterval) {
  const IntInterval a{2, 8};
  EXPECT_TRUE(a.contains(IntInterval{3, 7}));
  EXPECT_TRUE(a.contains(IntInterval{2, 8}));
  EXPECT_FALSE(a.contains(IntInterval{1, 5}));
  EXPECT_TRUE(a.contains(IntInterval{}));  // empty in anything
}

TEST(Interval, ExpandedClamps) {
  const IntInterval a{4, 6};
  EXPECT_EQ(a.expanded(3, 0, 20), (IntInterval{1, 9}));
  EXPECT_EQ(a.expanded(10, 0, 8), (IntInterval{0, 8}));
}

/// Property sweep: intersect is commutative and contained in both; merge
/// contains both.
class IntervalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalProperty, AlgebraHolds) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = IntInterval::spanning(rng.uniform_i32(-50, 50),
                                         rng.uniform_i32(-50, 50));
    const auto b = IntInterval::spanning(rng.uniform_i32(-50, 50),
                                         rng.uniform_i32(-50, 50));
    EXPECT_EQ(a.intersect(b), b.intersect(a));
    EXPECT_TRUE(a.contains(a.intersect(b)));
    EXPECT_TRUE(b.contains(a.intersect(b)));
    EXPECT_TRUE(a.merge(b).contains(a));
    EXPECT_TRUE(a.merge(b).contains(b));
    EXPECT_EQ(a.overlaps(b), !a.intersect(b).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace bgr

#include "bgr/io/design_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "bgr/io/io_error.hpp"
#include "bgr/io/table.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

TEST(DesignIo, TerminalRefRoundTrip) {
  const Dataset ds = generate_circuit(testutil::small_spec(12));
  int checked = 0;
  for (const TerminalId t : ds.netlist.terminals()) {
    if (checked >= 50) break;
    const std::string ref = terminal_ref(ds.netlist, t);
    EXPECT_EQ(find_terminal(ds.netlist, ref), t) << ref;
    ++checked;
  }
  EXPECT_FALSE(find_terminal(ds.netlist, "pad:NOPE").valid());
  EXPECT_FALSE(find_terminal(ds.netlist, "ghost.O").valid());
}

TEST(DesignIo, WriteReadRoundTrip) {
  const Dataset original = generate_circuit(testutil::small_spec(13));
  std::stringstream stream;
  write_design(stream, original);
  const Dataset loaded = read_design(stream);

  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.netlist.cell_count(), original.netlist.cell_count());
  EXPECT_EQ(loaded.netlist.net_count(), original.netlist.net_count());
  EXPECT_EQ(loaded.netlist.terminal_count(), original.netlist.terminal_count());
  EXPECT_EQ(loaded.placement.row_count(), original.placement.row_count());
  EXPECT_EQ(loaded.placement.width(), original.placement.width());
  ASSERT_EQ(loaded.constraints.size(), original.constraints.size());
  for (std::size_t i = 0; i < loaded.constraints.size(); ++i) {
    EXPECT_NEAR(loaded.constraints[i].limit_ps,
                original.constraints[i].limit_ps, 1e-6);
  }

  // A second serialisation must be byte-identical to the first (stable
  // canonical form).
  std::stringstream again;
  write_design(again, loaded);
  EXPECT_EQ(stream.str(), again.str());
}

TEST(DesignIo, RoundTripPreservesDifferentialPairs) {
  const Dataset original = generate_circuit(testutil::small_spec(14));
  std::stringstream stream;
  write_design(stream, original);
  const Dataset loaded = read_design(stream);
  std::int32_t pairs_orig = 0;
  std::int32_t pairs_loaded = 0;
  for (const NetId n : original.netlist.nets()) {
    if (original.netlist.net(n).is_differential() &&
        original.netlist.net(n).diff_primary) {
      ++pairs_orig;
    }
  }
  for (const NetId n : loaded.netlist.nets()) {
    if (loaded.netlist.net(n).is_differential() &&
        loaded.netlist.net(n).diff_primary) {
      ++pairs_loaded;
    }
  }
  EXPECT_EQ(pairs_loaded, pairs_orig);
}

TEST(DesignIo, RejectsGarbage) {
  std::stringstream bad("hello world\n");
  EXPECT_THROW((void)read_design(bad), IoError);
  std::stringstream bad2("bgr-design 1\nfrobnicate x y\nend\n");
  EXPECT_THROW((void)read_design(bad2), IoError);
}

TEST(DesignIo, DiagnosticsCarrySourceAndLine) {
  std::stringstream bad("bgr-design 1\nchip rows 1 width 20\nfrob x\nend\n");
  try {
    (void)read_design(bad, "t.txt");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("t.txt:3:"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("unknown record"), std::string::npos)
        << e.what();
  }
}

TEST(DesignIo, RejectsTruncation) {
  const Dataset original = generate_circuit(testutil::small_spec(16));
  std::stringstream stream;
  write_design(stream, original);
  const std::string text = stream.str();
  // Cut the file mid-way: the parser must fail cleanly, never return a
  // partial Dataset.
  std::stringstream cut(text.substr(0, text.size() / 2));
  EXPECT_THROW((void)read_design(cut), IoError);
}

TEST(DesignIo, FileHelpers) {
  const Dataset original = generate_circuit(testutil::small_spec(15));
  const std::string path = ::testing::TempDir() + "/bgr_design_test.txt";
  save_design(path, original);
  const Dataset loaded = load_design(path);
  EXPECT_EQ(loaded.netlist.cell_count(), original.netlist.cell_count());
  EXPECT_THROW((void)load_design("/nonexistent/nowhere.txt"), IoError);
}

TEST(TextTable, FormatsAligned) {
  TextTable table({"Data", "Delay", "Area"});
  table.add_row({"C1P1", TextTable::fmt(1234.5, 1), TextTable::fmt(2.0, 3)});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("C1P1"), std::string::npos);
  EXPECT_NE(out.find("1234.5"), std::string::npos);
  EXPECT_NE(out.find("2.000"), std::string::npos);
  EXPECT_THROW(table.add_row({"too", "short"}), CheckError);
}

}  // namespace
}  // namespace bgr

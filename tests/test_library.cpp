#include "bgr/netlist/library.hpp"

#include <gtest/gtest.h>

namespace bgr {
namespace {

TEST(Library, DefaultLibraryHasAllTypes) {
  const Library lib = Library::make_ecl_default();
  for (const char* name : {"BUF1", "INV1", "NOR2", "NOR3", "XOR2", "MUX2",
                           "DFF", "CKBUF", "DDRV", "DRCV", "FEED"}) {
    EXPECT_TRUE(lib.find(name).valid()) << name;
  }
  EXPECT_FALSE(lib.find("NAND9").valid());
}

TEST(Library, FeedCellHasNoPins) {
  const Library lib = Library::make_ecl_default();
  const CellType& feed = lib.type(lib.find("FEED"));
  EXPECT_TRUE(feed.is_feed());
  EXPECT_EQ(feed.pin_count(), 0);
  EXPECT_EQ(feed.width(), 1);
}

TEST(Library, RegisterArcsLaunchFromClock) {
  const Library lib = Library::make_ecl_default();
  const CellType& dff = lib.type(lib.find("DFF"));
  EXPECT_TRUE(dff.is_register());
  ASSERT_EQ(dff.arcs().size(), 1u);
  const DelayArc& arc = dff.arcs().front();
  EXPECT_EQ(dff.pin(arc.from).dir, PinDir::kClock);
  EXPECT_EQ(dff.pin(arc.to).dir, PinDir::kOutput);
  // D has no outgoing arc: it is a timing endpoint.
  const PinId d = dff.find_pin("D");
  for (const DelayArc& a : dff.arcs()) {
    EXPECT_NE(a.from, d);
  }
}

TEST(Library, CombinationalArcsCoverAllInputs) {
  const Library lib = Library::make_ecl_default();
  const CellType& nor3 = lib.type(lib.find("NOR3"));
  EXPECT_EQ(nor3.arcs().size(), 3u);
  for (const DelayArc& arc : nor3.arcs()) {
    EXPECT_EQ(nor3.pin(arc.from).dir, PinDir::kInput);
    EXPECT_GT(arc.t0_ps, 0.0);
  }
}

TEST(Library, DifferentialPinsAreAdjacentColumns) {
  const Library lib = Library::make_ecl_default();
  const CellType& drv = lib.type(lib.find("DDRV"));
  EXPECT_EQ(drv.pin(drv.find_pin("OC")).offset,
            drv.pin(drv.find_pin("OT")).offset + 1);
  const CellType& rcv = lib.type(lib.find("DRCV"));
  EXPECT_EQ(rcv.pin(rcv.find_pin("IC")).offset,
            rcv.pin(rcv.find_pin("IT")).offset + 1);
}

TEST(Library, PinOffsetsInsideCell) {
  const Library lib = Library::make_ecl_default();
  for (std::int32_t i = 0; i < lib.size(); ++i) {
    const CellType& type = lib.type(CellTypeId{i});
    for (const PinSpec& pin : type.pins()) {
      EXPECT_GE(pin.offset, 0);
      EXPECT_LT(pin.offset, type.width());
    }
  }
}

TEST(Library, OutputPinsCarryDriveFactors) {
  const Library lib = Library::make_ecl_default();
  for (std::int32_t i = 0; i < lib.size(); ++i) {
    const CellType& type = lib.type(CellTypeId{i});
    for (const PinSpec& pin : type.pins()) {
      if (pin.dir == PinDir::kOutput) {
        EXPECT_GT(pin.tf_ps_per_pf, 0.0) << type.name();
        EXPECT_GT(pin.td_ps_per_pf, 0.0) << type.name();
      } else {
        EXPECT_GT(pin.fanin_cap_pf, 0.0) << type.name();
      }
    }
  }
}

TEST(Library, ArcValidation) {
  CellType type{"T", 2, false, false};
  PinSpec in;
  in.name = "I";
  in.dir = PinDir::kInput;
  const PinId i = type.add_pin(in);
  PinSpec out;
  out.name = "O";
  out.dir = PinDir::kOutput;
  out.offset = 1;
  const PinId o = type.add_pin(out);
  EXPECT_THROW(type.add_arc(o, i, 1.0), CheckError);  // backwards
  type.add_arc(i, o, 5.0);
  EXPECT_EQ(type.arcs().size(), 1u);
}

TEST(Library, PinOffsetOutsideCellRejected) {
  CellType type{"T", 2, false, false};
  PinSpec bad;
  bad.name = "X";
  bad.offset = 5;
  EXPECT_THROW((void)type.add_pin(bad), CheckError);
}

}  // namespace
}  // namespace bgr

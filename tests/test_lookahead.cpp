// Differential battery for the chip-level lookahead maps (DESIGN.md §15):
// on dozens of fuzz-sampled designs, the table-derived A* bound must be
// admissible (never above the exact multi-source Dijkstra distance) on
// every live mid-routing graph, the searches it drives must be
// bit-identical to the reference Dijkstra, and the full pipeline outcome
// under --lookahead map must match --lookahead exact at 1 and 8 threads.
//
// BGR_LOOKAHEAD_INFLATE=<factor> (CI's seeded must-fail check) multiplies
// the derived bounds before use; any factor above 1 makes them
// inadmissible, and the admissibility assertion below must catch it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bgr/fuzz/spec_sampler.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/route/lookahead.hpp"
#include "bgr/route/path_search.hpp"
#include "bgr/route/router.hpp"
#include "bgr/timing/lower_bound.hpp"

namespace bgr {
namespace {

double inflation() {
  const char* env = std::getenv("BGR_LOOKAHEAD_INFLATE");
  if (env == nullptr) return 1.0;
  const double f = std::atof(env);
  return f > 0.0 ? f : 1.0;
}

/// The map-derived heuristic for a live routing graph, optionally
/// inflated (test hook: an inflated bound is inadmissible by
/// construction and must trip the assertions below).
GoalHeuristic derive_map(const RoutingGraph& g, const ChipLookahead& table) {
  const SmallGraph& sg = g.graph();
  std::vector<RouteVertexInfo> vertices;
  vertices.reserve(static_cast<std::size_t>(sg.vertex_count()));
  for (std::int32_t v = 0; v < sg.vertex_count(); ++v) {
    vertices.push_back(g.vertex_info(v));
  }
  GoalHeuristic heuristic =
      table.derive(sg, vertices, g.driver_vertex(), g.terminal_vertices());
  const double f = inflation();
  if (f != 1.0) {
    for (double& h : heuristic.h) {
      if (std::isfinite(h)) h *= f;
    }
  }
  return heuristic;
}

/// Per-graph check, mid-routing (real deletions applied): the map bound
/// is admissible against the exact distances, and the A* searches it
/// drives — raw and through the cache-backed engine — return the same
/// tentative trees as the reference Dijkstra.
void check_map_bounds_on_graph(const RoutingGraph& g,
                               const ChipLookahead& table, std::int64_t step) {
  const SmallGraph& sg = g.graph();
  const GoalHeuristic exact =
      build_goal_heuristic(sg, g.driver_vertex(), g.terminal_vertices());
  const GoalHeuristic map = derive_map(g, table);
  ASSERT_EQ(map.h.size(), exact.h.size());

  // Admissibility: never above the exact distance to the nearest target.
  // Both bounds carry the same relative shave, so the comparison is
  // direct, with a hair of absolute slack for the different floating-
  // point summation orders (prefix difference vs edge-by-edge).
  for (std::size_t v = 0; v < exact.h.size(); ++v) {
    if (!std::isfinite(exact.h[v])) continue;  // true distance unbounded
    ASSERT_LE(map.h[v], exact.h[v] + 1e-6 * (1.0 + exact.h[v]))
        << "inadmissible map bound at vertex " << v << ", deletion step "
        << step;
  }

  PathSearchScratch dijkstra_scratch;
  PathSearchScratch astar_scratch;
  PathSearchEngine engine(PathSearchBackend::kAstar, nullptr);
  SearchCache cache;
  engine.refresh_cache(sg, g.driver_vertex(), g.terminal_vertices(), &cache);

  std::vector<std::int32_t> skips{SmallGraph::kNone};
  for (const std::int32_t e : g.non_bridge_edges()) {
    skips.push_back(e);
    if (skips.size() >= 6) break;
  }
  for (const std::int32_t skip : skips) {
    std::vector<std::int32_t> dijkstra_tree;
    std::vector<std::int32_t> astar_tree;
    std::vector<std::int32_t> cached_tree;
    (void)path_search_tree(sg, PathSearchBackend::kDijkstra, nullptr,
                           g.driver_vertex(), g.terminal_vertices(), skip,
                           dijkstra_scratch, &dijkstra_tree);
    (void)path_search_tree(sg, PathSearchBackend::kAstar, &map,
                           g.driver_vertex(), g.terminal_vertices(), skip,
                           astar_scratch, &astar_tree);
    engine.tentative_tree(sg, &map, &cache, g.driver_vertex(),
                          g.terminal_vertices(), skip, &cached_tree);
    ASSERT_EQ(dijkstra_tree, astar_tree)
        << "map-driven tree diverged at deletion step " << step << ", skip "
        << skip;
    ASSERT_EQ(dijkstra_tree, cached_tree)
        << "map-driven cone repair diverged at deletion step " << step
        << ", skip " << skip;
  }
}

TEST(ChipLookahead, GeometryMatchesTheSharedFeedAndTrunkWeights) {
  const TechParams tech;
  const ChipLookahead table(4, tech);
  ASSERT_EQ(table.channel_count(), 5);
  EXPECT_GT(table.step_um(), 0.0);
  EXPECT_DOUBLE_EQ(table.crossing_um(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(table.crossing_um(0, 4), table.crossing_um(4, 0));
  // One row between adjacent channels, priced exactly like a feed edge.
  EXPECT_DOUBLE_EQ(table.crossing_um(1, 2), row_crossing_cost_um(tech));
  // Crossing costs accumulate: [0,4] is [0,2] plus [2,4].
  EXPECT_DOUBLE_EQ(table.crossing_um(0, 4),
                   table.crossing_um(0, 2) + table.crossing_um(2, 4));
}

TEST(LookaheadDifferential, MapBoundsAdmissibleDuringRouting) {
  for (const std::uint64_t seed : {1, 2, 3, 5, 8, 13, 21, 34, 55, 89}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Dataset design = generate_circuit(sample_spec(seed));
    const ChipLookahead table(design.placement.row_count(), design.tech);

    std::unique_ptr<GlobalRouter> router;
    std::int64_t steps = 0;
    RouterOptions options;
    options.deletion_observer = [&](NetId net, std::int32_t) {
      if (::testing::Test::HasFatalFailure()) return;
      if (++steps > 40) return;  // first few dozen live states per seed
      check_map_bounds_on_graph(router->net_graph(net), table, steps);
    };
    router = std::make_unique<GlobalRouter>(design.netlist,
                                            std::move(design.placement),
                                            design.tech, design.constraints,
                                            options);
    (void)router->run();
    EXPECT_GT(steps, 0) << "observer never fired (seed " << seed << ")";
    if (::testing::Test::HasFatalFailure()) return;
  }
}

struct PipelineSnapshot {
  RouteOutcome outcome;
  std::vector<double> net_lengths_um;
  std::vector<double> margins_ps;
};

PipelineSnapshot route_pipeline(const CircuitSpec& spec, LookaheadMode mode,
                                std::int32_t threads) {
  Dataset design = generate_circuit(spec);
  RouterOptions options;
  options.path_search = PathSearchBackend::kAstar;
  options.lookahead = mode;
  options.threads = threads;
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  PipelineSnapshot snap;
  snap.outcome = router.run();
  for (const NetId n : design.netlist.nets()) {
    snap.net_lengths_um.push_back(router.net_length_um(n));
  }
  for (const ConstraintId p : router.analyzer().constraints()) {
    snap.margins_ps.push_back(router.analyzer().margin_ps(p));
  }
  return snap;
}

/// Bit-identity of everything the router decided. `compare_path_effort`
/// is off across lookahead modes (pop counts differ — the exact bound is
/// tighter) and on across thread counts.
void expect_identical(const PipelineSnapshot& a, const PipelineSnapshot& b,
                      bool compare_path_effort) {
  EXPECT_EQ(a.outcome.critical_delay_ps, b.outcome.critical_delay_ps);
  EXPECT_EQ(a.outcome.total_length_um, b.outcome.total_length_um);
  EXPECT_EQ(a.outcome.violated_constraints, b.outcome.violated_constraints);
  EXPECT_EQ(a.outcome.worst_margin_ps, b.outcome.worst_margin_ps);
  EXPECT_EQ(a.outcome.feed_cells_added, b.outcome.feed_cells_added);
  EXPECT_EQ(a.outcome.widen_pitches, b.outcome.widen_pitches);
  ASSERT_EQ(a.outcome.phases.size(), b.outcome.phases.size());
  for (std::size_t i = 0; i < a.outcome.phases.size(); ++i) {
    const PhaseStats& pa = a.outcome.phases[i];
    const PhaseStats& pb = b.outcome.phases[i];
    EXPECT_EQ(pa.deletions, pb.deletions) << pa.name;
    EXPECT_EQ(pa.reroutes, pb.reroutes) << pa.name;
    EXPECT_EQ(pa.critical_delay_ps, pb.critical_delay_ps) << pa.name;
    EXPECT_EQ(pa.worst_margin_ps, pb.worst_margin_ps) << pa.name;
    EXPECT_EQ(pa.sum_max_density, pb.sum_max_density) << pa.name;
    EXPECT_EQ(pa.sta_relaxations, pb.sta_relaxations) << pa.name;
    if (compare_path_effort) {
      EXPECT_EQ(pa.path_searches, pb.path_searches) << pa.name;
      EXPECT_EQ(pa.path_pops, pb.path_pops) << pa.name;
      EXPECT_EQ(pa.path_relaxations, pb.path_relaxations) << pa.name;
    }
  }
  EXPECT_EQ(a.net_lengths_um, b.net_lengths_um);
  EXPECT_EQ(a.margins_ps, b.margins_ps);
}

TEST(LookaheadDifferential, PipelineBitIdenticalAcrossModes) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const CircuitSpec spec = sample_spec(seed);
    const PipelineSnapshot exact =
        route_pipeline(spec, LookaheadMode::kExact, 1);
    const PipelineSnapshot map = route_pipeline(spec, LookaheadMode::kMap, 1);
    expect_identical(exact, map, /*compare_path_effort=*/false);

    // Every fifth seed also crosses thread counts, per mode: one shared
    // immutable table must serve the parallel graph builds unchanged.
    if (seed % 5 == 0) {
      expect_identical(map, route_pipeline(spec, LookaheadMode::kMap, 8),
                       /*compare_path_effort=*/true);
      expect_identical(exact, route_pipeline(spec, LookaheadMode::kExact, 8),
                       /*compare_path_effort=*/true);
    }
  }
}

}  // namespace
}  // namespace bgr

#include "bgr/timing/lower_bound.hpp"

#include <gtest/gtest.h>

#include "bgr/fuzz/spec_sampler.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/route/router.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

using testutil::ChainCircuit;

TEST(LowerBound, HalfPerimeterHandCase) {
  ChainCircuit c;
  const Placement pl = c.make_placement();
  TechParams tech;
  // Net n0: g0.O at column 2+1=3 (BUF1 "O" offset 1), g1.I0 at column 14,
  // both on row 0 → Δx = 11 pitches = 33 um, Δy = 0.
  EXPECT_NEAR(net_half_perimeter_um(c.nl, pl, tech, c.n0), 33.0, 1e-9);
  // Net n1: g1.O at column 14+2=16 row 0, ff.D at column 8 row 1:
  // Δx = 8 pitches = 24 um, Δy = one row = 60 um.
  EXPECT_NEAR(net_half_perimeter_um(c.nl, pl, tech, c.n1), 84.0, 1e-9);
}

TEST(LowerBound, PadNetsReachChipEdge) {
  ChainCircuit c;
  Placement pl = c.make_placement();
  TechParams tech;
  pl.pad_site(c.pad_a).assigned_x = 3;
  // Net a: pad A at (x=3, top of 2-row chip → y=120), g0.I0 at column 2,
  // row 0 → y = 30. HPWL = 1·3 + 90 = 93 um.
  EXPECT_NEAR(net_half_perimeter_um(c.nl, pl, tech, c.a), 93.0, 1e-9);
}

TEST(LowerBound, DelayBoundExceedsZeroWire) {
  ChainCircuit c;
  const Placement pl = c.make_placement();
  TechParams tech;
  DelayGraph dg(c.nl);
  const double zero_wire = dg.critical_delay_ps();
  const double lb = lower_bound_delay_ps(dg, pl, tech);
  EXPECT_GT(lb, zero_wire);
}

TEST(LowerBound, MultiPitchNetsScaleCapacitance) {
  ChainCircuit c;
  const Placement pl = c.make_placement();
  TechParams tech;
  const double um = 100.0;
  EXPECT_NEAR(tech.wire_cap_pf(um, 2), 2.0 * tech.wire_cap_pf(um, 1), 1e-15);
}

TEST(LowerBound, BoundIsBelowAnyRoutedLength) {
  // Property: HPWL is a lower bound on any tree length over the terminals.
  ChainCircuit c;
  const Placement pl = c.make_placement();
  TechParams tech;
  // Manhattan star length from the driver is an upper bound on HPWL.
  for (const NetId n : c.nl.nets()) {
    const double hpwl = net_half_perimeter_um(c.nl, pl, tech, n);
    double star = 0.0;
    const auto terms = c.nl.net_terminals(n);
    const double x0 =
        static_cast<double>(pl.terminal_column(c.nl, terms[0])) *
        tech.grid_pitch_um;
    for (const TerminalId t : terms) {
      star += std::abs(static_cast<double>(pl.terminal_column(c.nl, t)) *
                           tech.grid_pitch_um -
                       x0);
    }
    EXPECT_LE(hpwl, star + 2.0 * 60.0 * 2.0 + 1e-9);
  }
}

TEST(LowerBound, RowCrossingCostPricesEveryFeedEdge) {
  // The chip-level lookahead table (DESIGN.md §15) prices one row
  // crossing at exactly row_crossing_cost_um; its admissibility rests on
  // every feed edge of every routing graph weighing exactly that. Pin
  // the cross-module identity on a fuzz-sampled design.
  Dataset design = generate_circuit(sample_spec(7));
  const double cross = row_crossing_cost_um(design.tech);
  EXPECT_NEAR(cross,
              design.tech.row_cross_um() +
                  2.0 * design.tech.channel_depth_est_um,
              1e-12);
  GlobalRouter router(design.netlist, std::move(design.placement),
                      design.tech, design.constraints, RouterOptions{});
  (void)router.run();  // graphs are built lazily by the pipeline
  std::int64_t feed_edges = 0;
  for (const NetId n : design.netlist.nets()) {
    const RoutingGraph& g = router.net_graph(n);
    for (std::int32_t e = 0; e < g.graph().edge_count(); ++e) {
      if (g.edge_info(e).kind != RouteEdgeKind::kFeed) continue;
      ++feed_edges;
      EXPECT_DOUBLE_EQ(g.graph().edge(e).weight, cross);
    }
  }
  EXPECT_GT(feed_edges, 0);
}

}  // namespace
}  // namespace bgr

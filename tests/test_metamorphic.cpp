// Metamorphic properties of the router and the timing analyzer:
//  * relabeling — permuting cell and net identities of a design must yield
//    an isomorphic routed result (same total length, margins, density
//    profile once relabeled back);
//  * constraint scaling — multiplying every δ_P by a constant shifts each
//    margin by exactly (c − 1)·δ_P, since M(P) = δ_P − critical and the
//    critical delay does not depend on the limits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "bgr/common/rng.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/route/router.hpp"
#include "bgr/route/shard.hpp"

namespace bgr {
namespace {

CircuitSpec meta_spec(std::uint64_t seed) {
  CircuitSpec spec;
  spec.name = "META" + std::to_string(seed);
  spec.seed = seed;
  spec.rows = 5;
  spec.target_cells = 80;
  spec.levels = 6;
  spec.primary_inputs = 6;
  spec.primary_outputs = 6;
  spec.diff_pairs = 2;
  spec.clock_buffers = 1;
  spec.path_constraints = 10;
  return spec;
}

/// Rebuilds the dataset with cells and nets renumbered by the given
/// permutations (new id i holds what old id perm[i] held). Terminals are
/// renumbered implicitly by the rebuild order; constraints and pad sites
/// are remapped. The result describes the *same* physical design.
Dataset relabel(const Dataset& d, const std::vector<std::int32_t>& cell_perm,
                const std::vector<std::int32_t>& net_perm) {
  const Netlist& old = d.netlist;
  Netlist netlist(old.library());
  std::vector<CellId> cell_map(static_cast<std::size_t>(old.cell_count()));
  for (const std::int32_t o : cell_perm) {
    const CellId old_id{o};
    cell_map[static_cast<std::size_t>(o)] =
        netlist.add_cell(old.cell(old_id).name, old.cell(old_id).type);
  }
  std::vector<NetId> net_map(static_cast<std::size_t>(old.net_count()));
  for (const std::int32_t o : net_perm) {
    const NetId old_id{o};
    net_map[static_cast<std::size_t>(o)] =
        netlist.add_net(old.net(old_id).name, old.net(old_id).pitch_width);
  }

  // Terminals in their *original global creation order* so each keeps its
  // TerminalId (the pad-assignment pass processes pads in TerminalId order,
  // a documented processing order, not an identity the relabeling is meant
  // to scramble). Only the nets and cells they attach to are renumbered.
  std::vector<TerminalId> term_map(static_cast<std::size_t>(old.terminal_count()),
                                   TerminalId::invalid());
  for (std::int32_t ti = 0; ti < old.terminal_count(); ++ti) {
    const TerminalId t{ti};
    const Terminal& term = old.terminal(t);
    const NetId new_net = net_map[static_cast<std::size_t>(term.net.value())];
    TerminalId mapped = TerminalId::invalid();
    switch (term.kind) {
      case TerminalKind::kCellPin:
        mapped = netlist.connect(new_net,
                                 cell_map[static_cast<std::size_t>(
                                     term.cell.value())],
                                 term.pin);
        break;
      case TerminalKind::kPadIn:
        mapped = netlist.add_pad_input(term.pad_name, new_net,
                                       term.pad_tf_ps_per_pf,
                                       term.pad_td_ps_per_pf);
        break;
      case TerminalKind::kPadOut:
        mapped = netlist.add_pad_output(term.pad_name, new_net,
                                        term.pad_cap_pf);
        break;
    }
    term_map[static_cast<std::size_t>(t.value())] = mapped;
  }
  for (const NetId n : old.nets()) {
    const Net& net = old.net(n);
    if (net.is_differential() && net.diff_primary) {
      netlist.make_differential(net_map[static_cast<std::size_t>(n.value())],
                                net_map[static_cast<std::size_t>(
                                    net.diff_partner.value())]);
    }
  }

  Placement placement(d.placement.row_count(), d.placement.width());
  for (const CellId c : old.cells()) {
    const PlacedCell& pc = d.placement.placed(c);
    placement.place(netlist, cell_map[static_cast<std::size_t>(c.value())],
                    pc.row, pc.x);
  }
  for (const auto& [pad, site] : d.placement.pad_sites()) {
    placement.place_pad(term_map[static_cast<std::size_t>(pad.value())],
                        site.top, site.window);
  }

  std::vector<PathConstraint> constraints;
  for (const PathConstraint& pc : d.constraints) {
    PathConstraint mapped;
    mapped.name = pc.name;
    mapped.limit_ps = pc.limit_ps;
    for (const TerminalId t : pc.sources) {
      mapped.sources.push_back(term_map[static_cast<std::size_t>(t.value())]);
    }
    for (const TerminalId t : pc.sinks) {
      mapped.sinks.push_back(term_map[static_cast<std::size_t>(t.value())]);
    }
    constraints.push_back(std::move(mapped));
  }

  return Dataset{d.name + "_relabel", d.spec,
                 std::move(netlist), std::move(placement),
                 std::move(constraints), d.tech};
}

std::vector<std::int32_t> random_permutation(std::int32_t n, Rng& rng) {
  std::vector<std::int32_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::int32_t i = n - 1; i > 0; --i) {
    const std::int32_t j = rng.uniform_i32(0, i);
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

struct Routed {
  RouteOutcome outcome;
  std::vector<double> margins;
  std::vector<std::int32_t> channel_c_max;
};

Routed route(Dataset design) {
  RouterOptions options;
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  Routed r;
  r.outcome = router.run();
  for (const ConstraintId p : router.analyzer().constraints()) {
    r.margins.push_back(router.analyzer().margin_ps(p));
  }
  for (std::int32_t c = 0; c < router.density().channel_count(); ++c) {
    r.channel_c_max.push_back(router.density().channel_params(c).c_max);
  }
  return r;
}

TEST(Metamorphic, RelabelingYieldsIsomorphicRouteOutcome) {
  for (const std::uint64_t seed : {2u, 9u, 14u}) {
    const Dataset design = generate_circuit(meta_spec(seed));
    Rng rng(seed * 1000 + 7);
    const auto cell_perm = random_permutation(design.netlist.cell_count(), rng);
    const auto net_perm = random_permutation(design.netlist.net_count(), rng);
    const Dataset relabeled = relabel(design, cell_perm, net_perm);

    const Routed a = route(design);
    const Routed b = route(relabeled);

    EXPECT_EQ(a.outcome.total_length_um, b.outcome.total_length_um)
        << "seed " << seed;
    EXPECT_EQ(a.outcome.critical_delay_ps, b.outcome.critical_delay_ps)
        << "seed " << seed;
    EXPECT_EQ(a.outcome.worst_margin_ps, b.outcome.worst_margin_ps)
        << "seed " << seed;
    EXPECT_EQ(a.outcome.violated_constraints, b.outcome.violated_constraints);
    EXPECT_EQ(a.outcome.feed_cells_added, b.outcome.feed_cells_added);
    // Constraint order is preserved by the relabeling, so margins compare
    // slot by slot; the density profile is per physical channel, which the
    // relabeling does not move.
    EXPECT_EQ(a.margins, b.margins) << "seed " << seed;
    EXPECT_EQ(a.channel_c_max, b.channel_c_max) << "seed " << seed;
  }
}

/// Blocked variant of meta_spec: several closed cones, so the sharded
/// deletion loop actually decomposes (DESIGN.md §13).
CircuitSpec meta_blocked_spec(std::uint64_t seed) {
  CircuitSpec spec = meta_spec(seed);
  spec.blocks = 3;
  spec.rows = 3;
  spec.target_cells = 240;
  spec.diff_pairs = 3;
  spec.path_constraints = 9;
  return spec;
}

TEST(Metamorphic, RelabelingPreservesShardedRouteAndDecomposition) {
  // Shard membership hangs off net ids, but the *partition* is a function
  // of the physical footprints alone: relabeling the nets must yield the
  // same routed result and the same shard-size multiset, with each shard
  // covering the same channels.
  for (const std::uint64_t seed : {5u, 18u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Dataset design = generate_circuit(meta_blocked_spec(seed));
    Rng rng(seed * 1000 + 31);
    const auto cell_perm = random_permutation(design.netlist.cell_count(), rng);
    const auto net_perm = random_permutation(design.netlist.net_count(), rng);
    const Dataset relabeled = relabel(design, cell_perm, net_perm);

    struct ShardShape {
      Routed routed;
      // (shard size, channel footprint) multiset, sorted.
      std::vector<std::pair<std::int32_t, std::vector<std::int32_t>>> shape;
    };
    auto run = [](Dataset d) {
      RouterOptions options;
      GlobalRouter router(d.netlist, std::move(d.placement), d.tech,
                          d.constraints, options);
      ShardShape s;
      s.routed.outcome = router.run();
      const ShardDecomposition& dec = router.shard_decomposition();
      for (const auto& shard : dec.shards) {
        std::vector<std::int32_t> channels;
        for (const std::int32_t i : shard) {
          const auto& ch = dec.nets[static_cast<std::size_t>(i)].channels;
          channels.insert(channels.end(), ch.begin(), ch.end());
        }
        std::sort(channels.begin(), channels.end());
        channels.erase(std::unique(channels.begin(), channels.end()),
                       channels.end());
        s.shape.emplace_back(static_cast<std::int32_t>(shard.size()),
                             std::move(channels));
      }
      std::sort(s.shape.begin(), s.shape.end());
      return s;
    };
    const ShardShape a = run(design);
    const ShardShape b = run(relabeled);
    ASSERT_GT(a.shape.size(), 1u) << "design did not decompose";
    EXPECT_EQ(a.routed.outcome.total_length_um,
              b.routed.outcome.total_length_um);
    EXPECT_EQ(a.routed.outcome.critical_delay_ps,
              b.routed.outcome.critical_delay_ps);
    EXPECT_EQ(a.routed.outcome.worst_margin_ps,
              b.routed.outcome.worst_margin_ps);
    EXPECT_EQ(a.shape, b.shape);
  }
}

TEST(Metamorphic, ScalingConstraintLimitsShiftsMargins) {
  for (const std::uint64_t seed : {4u, 13u}) {
    const Dataset design = generate_circuit(meta_spec(seed));
    const double scale = 1.75;

    DelayGraph graph_a(design.netlist);
    DelayGraph graph_b(design.netlist);
    // Arbitrary but identical wiring capacitances on both graphs.
    Rng rng(seed);
    for (const NetId n : design.netlist.nets()) {
      const double cap = rng.uniform_real(0.05, 1.5);
      graph_a.set_net_cap(n, cap);
      graph_b.set_net_cap(n, cap);
    }
    std::vector<PathConstraint> scaled = design.constraints;
    for (PathConstraint& pc : scaled) pc.limit_ps *= scale;

    const TimingAnalyzer base(graph_a, design.constraints);
    const TimingAnalyzer shifted(graph_b, scaled);
    ASSERT_EQ(base.constraint_count(), shifted.constraint_count());
    for (const ConstraintId p : base.constraints()) {
      const double limit = design.constraints[p.index()].limit_ps;
      // M'(P) = c·δ − critical, computed exactly as the analyzer does.
      const double critical = limit - base.margin_ps(p);
      EXPECT_EQ(shifted.margin_ps(p), limit * scale - critical)
          << "constraint " << p.index() << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace bgr

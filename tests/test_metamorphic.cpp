// Metamorphic properties of the router and the timing analyzer:
//  * relabeling — permuting cell and net identities of a design must yield
//    an isomorphic routed result (same total length, margins, density
//    profile once relabeled back);
//  * constraint scaling — multiplying every δ_P by a constant shifts each
//    margin by exactly (c − 1)·δ_P, since M(P) = δ_P − critical and the
//    critical delay does not depend on the limits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "bgr/common/rng.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/route/router.hpp"
#include "bgr/route/shard.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

CircuitSpec meta_spec(std::uint64_t seed) {
  CircuitSpec spec;
  spec.name = "META" + std::to_string(seed);
  spec.seed = seed;
  spec.rows = 5;
  spec.target_cells = 80;
  spec.levels = 6;
  spec.primary_inputs = 6;
  spec.primary_outputs = 6;
  spec.diff_pairs = 2;
  spec.clock_buffers = 1;
  spec.path_constraints = 10;
  return spec;
}

using testutil::relabel;
using testutil::random_permutation;

struct Routed {
  RouteOutcome outcome;
  std::vector<double> margins;
  std::vector<std::int32_t> channel_c_max;
};

Routed route(Dataset design) {
  RouterOptions options;
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  Routed r;
  r.outcome = router.run();
  for (const ConstraintId p : router.analyzer().constraints()) {
    r.margins.push_back(router.analyzer().margin_ps(p));
  }
  for (std::int32_t c = 0; c < router.density().channel_count(); ++c) {
    r.channel_c_max.push_back(router.density().channel_params(c).c_max);
  }
  return r;
}

TEST(Metamorphic, RelabelingYieldsIsomorphicRouteOutcome) {
  for (const std::uint64_t seed : {2u, 9u, 14u}) {
    const Dataset design = generate_circuit(meta_spec(seed));
    Rng rng(seed * 1000 + 7);
    const auto cell_perm = random_permutation(design.netlist.cell_count(), rng);
    const auto net_perm = random_permutation(design.netlist.net_count(), rng);
    const Dataset relabeled = relabel(design, cell_perm, net_perm);

    const Routed a = route(design);
    const Routed b = route(relabeled);

    EXPECT_EQ(a.outcome.total_length_um, b.outcome.total_length_um)
        << "seed " << seed;
    EXPECT_EQ(a.outcome.critical_delay_ps, b.outcome.critical_delay_ps)
        << "seed " << seed;
    EXPECT_EQ(a.outcome.worst_margin_ps, b.outcome.worst_margin_ps)
        << "seed " << seed;
    EXPECT_EQ(a.outcome.violated_constraints, b.outcome.violated_constraints);
    EXPECT_EQ(a.outcome.feed_cells_added, b.outcome.feed_cells_added);
    // Constraint order is preserved by the relabeling, so margins compare
    // slot by slot; the density profile is per physical channel, which the
    // relabeling does not move.
    EXPECT_EQ(a.margins, b.margins) << "seed " << seed;
    EXPECT_EQ(a.channel_c_max, b.channel_c_max) << "seed " << seed;
  }
}

/// Blocked variant of meta_spec: several closed cones, so the sharded
/// deletion loop actually decomposes (DESIGN.md §13).
CircuitSpec meta_blocked_spec(std::uint64_t seed) {
  CircuitSpec spec = meta_spec(seed);
  spec.blocks = 3;
  spec.rows = 3;
  spec.target_cells = 240;
  spec.diff_pairs = 3;
  spec.path_constraints = 9;
  return spec;
}

TEST(Metamorphic, RelabelingPreservesShardedRouteAndDecomposition) {
  // Shard membership hangs off net ids, but the *partition* is a function
  // of the physical footprints alone: relabeling the nets must yield the
  // same routed result and the same shard-size multiset, with each shard
  // covering the same channels.
  for (const std::uint64_t seed : {5u, 18u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Dataset design = generate_circuit(meta_blocked_spec(seed));
    Rng rng(seed * 1000 + 31);
    const auto cell_perm = random_permutation(design.netlist.cell_count(), rng);
    const auto net_perm = random_permutation(design.netlist.net_count(), rng);
    const Dataset relabeled = relabel(design, cell_perm, net_perm);

    struct ShardShape {
      Routed routed;
      // (shard size, channel footprint) multiset, sorted.
      std::vector<std::pair<std::int32_t, std::vector<std::int32_t>>> shape;
    };
    auto run = [](Dataset d) {
      RouterOptions options;
      GlobalRouter router(d.netlist, std::move(d.placement), d.tech,
                          d.constraints, options);
      ShardShape s;
      s.routed.outcome = router.run();
      const ShardDecomposition& dec = router.shard_decomposition();
      for (const auto& shard : dec.shards) {
        std::vector<std::int32_t> channels;
        for (const std::int32_t i : shard) {
          const auto& ch = dec.nets[static_cast<std::size_t>(i)].channels;
          channels.insert(channels.end(), ch.begin(), ch.end());
        }
        std::sort(channels.begin(), channels.end());
        channels.erase(std::unique(channels.begin(), channels.end()),
                       channels.end());
        s.shape.emplace_back(static_cast<std::int32_t>(shard.size()),
                             std::move(channels));
      }
      std::sort(s.shape.begin(), s.shape.end());
      return s;
    };
    const ShardShape a = run(design);
    const ShardShape b = run(relabeled);
    ASSERT_GT(a.shape.size(), 1u) << "design did not decompose";
    EXPECT_EQ(a.routed.outcome.total_length_um,
              b.routed.outcome.total_length_um);
    EXPECT_EQ(a.routed.outcome.critical_delay_ps,
              b.routed.outcome.critical_delay_ps);
    EXPECT_EQ(a.routed.outcome.worst_margin_ps,
              b.routed.outcome.worst_margin_ps);
    EXPECT_EQ(a.shape, b.shape);
  }
}

TEST(Metamorphic, ScalingConstraintLimitsShiftsMargins) {
  for (const std::uint64_t seed : {4u, 13u}) {
    const Dataset design = generate_circuit(meta_spec(seed));
    const double scale = 1.75;

    DelayGraph graph_a(design.netlist);
    DelayGraph graph_b(design.netlist);
    // Arbitrary but identical wiring capacitances on both graphs.
    Rng rng(seed);
    for (const NetId n : design.netlist.nets()) {
      const double cap = rng.uniform_real(0.05, 1.5);
      graph_a.set_net_cap(n, cap);
      graph_b.set_net_cap(n, cap);
    }
    std::vector<PathConstraint> scaled = design.constraints;
    for (PathConstraint& pc : scaled) pc.limit_ps *= scale;

    const TimingAnalyzer base(graph_a, design.constraints);
    const TimingAnalyzer shifted(graph_b, scaled);
    ASSERT_EQ(base.constraint_count(), shifted.constraint_count());
    for (const ConstraintId p : base.constraints()) {
      const double limit = design.constraints[p.index()].limit_ps;
      // M'(P) = c·δ − critical, computed exactly as the analyzer does.
      const double critical = limit - base.margin_ps(p);
      EXPECT_EQ(shifted.margin_ps(p), limit * scale - critical)
          << "constraint " << p.index() << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace bgr

// Determinism contract of the semantic metric namespace: every counter
// and histogram registered kSemantic must be bit-identical across thread
// counts. The test routes the same generated design at 1, 2 and 8 threads
// (registry reset in between) and compares the serialized semantic
// snapshots byte for byte — any schedule-dependent increment that sneaks
// into the semantic scope fails here before it reaches CI's CLI check.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bgr/channel/channel_router.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/route/router.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

std::string route_and_snapshot_semantic(std::uint64_t seed,
                                        std::int32_t threads) {
  MetricsRegistry::global().reset();
  Dataset ds = generate_circuit(testutil::small_spec(seed));
  RouterOptions options;
  options.threads = threads;
  GlobalRouter router(ds.netlist, std::move(ds.placement), ds.tech,
                      ds.constraints, options);
  (void)router.run();
  ChannelStage channel(router);
  channel.run();
  return MetricsRegistry::global()
      .scope_json(MetricScope::kSemantic)
      .dump();
}

TEST(MetricsDeterminism, SemanticCountersIdenticalAcrossThreadCounts) {
  const std::string serial = route_and_snapshot_semantic(501, 1);
  for (const std::int32_t threads : {2, 8}) {
    const std::string parallel = route_and_snapshot_semantic(501, threads);
    EXPECT_EQ(serial, parallel) << "semantic metrics diverged at "
                                << threads << " threads";
  }
}

TEST(MetricsDeterminism, SemanticSnapshotIsNonTrivial) {
  (void)route_and_snapshot_semantic(502, 2);
  MetricsRegistry& registry = MetricsRegistry::global();
  // The snapshot only proves determinism if routing actually exercised
  // the instrumented paths.
  for (const char* name :
       {"route.deleted_edges", "route.score_cache_miss", "route.graphs_built",
        "path.searches", "path.relaxations", "sta.full_sweeps",
        "channel.segments"}) {
    EXPECT_GT(registry.counter(name, MetricScope::kSemantic).value(), 0)
        << name;
  }
  EXPECT_GT(
      registry.histogram("route.graph_edges", MetricScope::kSemantic).count(),
      0);
  EXPECT_GT(
      registry.histogram("channel.tracks", MetricScope::kSemantic).count(), 0);
}

TEST(MetricsDeterminism, IncrementalStaTogglePreservesSemanticScope) {
  // Incremental vs full STA changes *which* sta.* counters move, so those
  // are excluded; everything routing-side must stay identical because the
  // routed result is bit-identical across the toggle.
  auto route = [](bool incremental) {
    MetricsRegistry::global().reset();
    Dataset ds = generate_circuit(testutil::small_spec(503));
    RouterOptions options;
    options.incremental_sta = incremental;
    GlobalRouter router(ds.netlist, std::move(ds.placement), ds.tech,
                        ds.constraints, options);
    (void)router.run();
    MetricsRegistry& registry = MetricsRegistry::global();
    std::vector<std::int64_t> out;
    for (const char* name :
         {"route.deleted_edges", "route.reroutes", "route.graphs_built",
          "layout.feed_cells_added"}) {
      out.push_back(registry.counter(name, MetricScope::kSemantic).value());
    }
    return out;
  };
  EXPECT_EQ(route(true), route(false));
}

}  // namespace
}  // namespace bgr

#include <gtest/gtest.h>

#include "bgr/metrics/experiment.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

class BudgetProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Dataset dataset_ = generate_circuit(testutil::small_spec(GetParam()));
};

TEST_P(BudgetProperty, BudgetModeCompletesAndReducesToTrees) {
  Netlist nl = dataset_.netlist;
  RouterOptions options;
  options.use_net_budgets = true;
  GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                      dataset_.constraints, options);
  const RouteOutcome outcome = router.run();
  EXPECT_GT(outcome.total_length_um, 0.0);
  for (const NetId n : nl.nets()) {
    EXPECT_TRUE(router.net_graph(n).is_tree());
  }
}

TEST_P(BudgetProperty, BudgetModeStillMeasuresPathConstraints) {
  Netlist nl = dataset_.netlist;
  RouterOptions options;
  options.use_net_budgets = true;
  GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                      dataset_.constraints, options);
  (void)router.run();
  // The analyzer carries the real path constraints in budget mode.
  EXPECT_EQ(router.analyzer().constraint_count(),
            static_cast<std::int32_t>(dataset_.constraints.size()));
}

TEST_P(BudgetProperty, BudgetModeBeatsUnconstrainedOnDelay) {
  RouterOptions budget;
  budget.use_net_budgets = true;
  const RunResult with_budgets = run_flow(dataset_, true, budget);
  const RunResult without = run_flow(dataset_, false);
  // Budgets are a weaker signal than path constraints but must still help
  // versus pure area-driven routing (allow a small tolerance: the two
  // runs route different trees).
  EXPECT_LT(with_budgets.delay_ps, without.delay_ps * 1.03);
}

TEST_P(BudgetProperty, DeterministicAcrossRuns) {
  RouterOptions options;
  options.use_net_budgets = true;
  const RunResult a = run_flow(dataset_, true, options);
  const RunResult b = run_flow(dataset_, true, options);
  EXPECT_DOUBLE_EQ(a.delay_ps, b.delay_ps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetProperty, ::testing::Values(61u, 62u));

}  // namespace
}  // namespace bgr

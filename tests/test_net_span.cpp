#include "bgr/route/net_span.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace bgr {
namespace {

using testutil::ChainCircuit;

TEST(NetSpan, BothSidedPinReachesTwoChannels) {
  ChainCircuit c;
  const Placement pl = c.make_placement();
  // g1.I0 on row 0: channels 0 (below) and 1 (above).
  const auto terms = c.nl.net_terminals(c.n0);
  const TerminalGeom geom = terminal_geom(c.nl, pl, terms[1]);
  EXPECT_EQ(geom.chan_lo, 0);
  EXPECT_EQ(geom.chan_hi, 1);
  EXPECT_EQ(geom.column, 14);
}

TEST(NetSpan, PadGeom) {
  ChainCircuit c;
  Placement pl = c.make_placement();
  pl.pad_site(c.pad_a).assigned_x = 7;
  const TerminalGeom geom = terminal_geom(c.nl, pl, c.pad_a);
  EXPECT_EQ(geom.column, 7);
  EXPECT_EQ(geom.chan_lo, 2);  // top of a 2-row chip
  EXPECT_EQ(geom.chan_hi, 2);
}

TEST(NetSpan, SameRowNetHasNoRequiredCrossing) {
  ChainCircuit c;
  const Placement pl = c.make_placement();
  const NetSpan span = net_span(c.nl, pl, c.n0);  // g0 → g1, both row 0
  EXPECT_EQ(span.chan_lo, 0);
  EXPECT_EQ(span.chan_hi, 1);
  EXPECT_EQ(span.row_lo(), 0);
  EXPECT_EQ(span.row_hi(), 0);
  EXPECT_FALSE(span.row_required(0));  // optional side-choice crossing
}

TEST(NetSpan, CrossRowNetStillOptionalWithBothSidedPins) {
  ChainCircuit c;
  const Placement pl = c.make_placement();
  // n1: g1 on row 0 (channels 0-1), ff.D on row 1 (channels 1-2): they can
  // meet in channel 1 without any crossing.
  const NetSpan span = net_span(c.nl, pl, c.n1);
  EXPECT_EQ(span.chan_lo, 0);
  EXPECT_EQ(span.chan_hi, 2);
  EXPECT_FALSE(span.row_required(0));
  EXPECT_FALSE(span.row_required(1));
}

TEST(NetSpan, PadNetRequiresCrossings) {
  ChainCircuit c;
  Placement pl = c.make_placement();
  pl.pad_site(c.pad_a).assigned_x = 5;
  // Net a: pad at channel 2 (top), g0.I0 on row 0 (channels 0-1): row 1
  // must be crossed.
  const NetSpan span = net_span(c.nl, pl, c.a);
  EXPECT_EQ(span.chan_lo, 0);
  EXPECT_EQ(span.chan_hi, 2);
  EXPECT_TRUE(span.row_required(1));
  EXPECT_FALSE(span.row_required(0));
  EXPECT_EQ(span.column_span, (IntInterval{2, 5}));
}

TEST(NetSpan, ColumnSpanIsTerminalHull) {
  ChainCircuit c;
  const Placement pl = c.make_placement();
  const NetSpan span = net_span(c.nl, pl, c.n0);
  EXPECT_EQ(span.column_span, (IntInterval{3, 14}));
}

TEST(NetSpan, SingleSidedPinReachesUpperChannelOnly) {
  Netlist nl{Library::make_ecl_default()};
  // A custom master whose input pin is only reachable from above.
  Library lib = Library::make_ecl_default();
  CellType custom{"ONESIDE", 2, false, false};
  PinSpec in;
  in.name = "I";
  in.dir = PinDir::kInput;
  in.offset = 0;
  in.both_sides = false;
  in.fanin_cap_pf = 0.02;
  const PinId in_pin = custom.add_pin(in);
  PinSpec out;
  out.name = "O";
  out.dir = PinDir::kOutput;
  out.offset = 1;
  out.tf_ps_per_pf = 100.0;
  out.td_ps_per_pf = 200.0;
  const PinId out_pin = custom.add_pin(out);
  custom.add_arc(in_pin, out_pin, 50.0);
  lib.add(std::move(custom));

  Netlist nl2(std::move(lib));
  const CellTypeId oneside = nl2.library().find("ONESIDE");
  const CellTypeId buf = nl2.library().find("BUF1");
  const CellId a = nl2.add_cell("a", buf);
  const CellId b = nl2.add_cell("b", oneside);
  const NetId n = nl2.add_net("n");
  (void)nl2.connect(n, a, nl2.cell_type(a).find_pin("O"));
  const TerminalId sink = nl2.connect(n, b, nl2.cell_type(b).find_pin("I"));
  Placement pl(2, 12);
  pl.place(nl2, a, RowId{0}, 0);
  pl.place(nl2, b, RowId{1}, 4);

  const TerminalGeom geom = terminal_geom(nl2, pl, sink);
  EXPECT_EQ(geom.chan_lo, 2);  // only the channel above row 1
  EXPECT_EQ(geom.chan_hi, 2);

  // Net a(row 0, channels 0-1) → b.I (channel 2 only): crossing row 1 is
  // now *required*.
  const NetSpan span = net_span(nl2, pl, n);
  EXPECT_TRUE(span.row_required(1));
}

}  // namespace
}  // namespace bgr

#include "bgr/netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace bgr {
namespace {

struct Fixture {
  Netlist nl{Library::make_ecl_default()};
  CellTypeId nor2 = nl.library().find("NOR2");
  CellTypeId buf = nl.library().find("BUF1");

  PinId pin(CellId c, const char* name) const {
    return nl.cell_type(c).find_pin(name);
  }
};

TEST(Netlist, ConnectOutputBecomesDriver) {
  Fixture f;
  const CellId g = f.nl.add_cell("g", f.nor2);
  const NetId n = f.nl.add_net("n");
  const TerminalId t = f.nl.connect(n, g, f.pin(g, "O"));
  EXPECT_EQ(f.nl.net(n).driver, t);
  EXPECT_TRUE(f.nl.net(n).sinks.empty());
}

TEST(Netlist, TwoDriversRejected) {
  Fixture f;
  const CellId g0 = f.nl.add_cell("g0", f.nor2);
  const CellId g1 = f.nl.add_cell("g1", f.nor2);
  const NetId n = f.nl.add_net("n");
  (void)f.nl.connect(n, g0, f.pin(g0, "O"));
  EXPECT_THROW((void)f.nl.connect(n, g1, f.pin(g1, "O")), CheckError);
}

TEST(Netlist, ValidateRejectsDriverlessNet) {
  Fixture f;
  const CellId g = f.nl.add_cell("g", f.nor2);
  const NetId n = f.nl.add_net("n");
  (void)f.nl.connect(n, g, f.pin(g, "I0"));
  EXPECT_THROW(f.nl.validate(), CheckError);
}

TEST(Netlist, ValidateRejectsSinklessNet) {
  Fixture f;
  const CellId g = f.nl.add_cell("g", f.nor2);
  const NetId n = f.nl.add_net("n");
  (void)f.nl.connect(n, g, f.pin(g, "O"));
  EXPECT_THROW(f.nl.validate(), CheckError);
}

TEST(Netlist, PadsActAsDriversAndSinks) {
  Fixture f;
  const CellId g = f.nl.add_cell("g", f.buf);
  const NetId in = f.nl.add_net("in");
  const NetId out = f.nl.add_net("out");
  (void)f.nl.add_pad_input("A", in, 100.0, 200.0);
  (void)f.nl.connect(in, g, f.pin(g, "I0"));
  (void)f.nl.connect(out, g, f.pin(g, "O"));
  (void)f.nl.add_pad_output("Y", out, 0.08);
  f.nl.validate();
  EXPECT_DOUBLE_EQ(f.nl.net_fanin_cap_pf(out), 0.08);
  const auto factors = f.nl.net_driver_factors(in);
  EXPECT_DOUBLE_EQ(factors.tf_ps_per_pf, 100.0);
  EXPECT_DOUBLE_EQ(factors.td_ps_per_pf, 200.0);
}

TEST(Netlist, FaninCapSumsAllSinks) {
  Fixture f;
  const CellId d = f.nl.add_cell("d", f.buf);
  const CellId g0 = f.nl.add_cell("g0", f.nor2);
  const CellId g1 = f.nl.add_cell("g1", f.nor2);
  const NetId n = f.nl.add_net("n");
  (void)f.nl.connect(n, d, f.pin(d, "O"));
  (void)f.nl.connect(n, g0, f.pin(g0, "I0"));
  (void)f.nl.connect(n, g1, f.pin(g1, "I1"));
  // NOR2 inputs are 0.030 pF each in the default library.
  EXPECT_NEAR(f.nl.net_fanin_cap_pf(n), 0.060, 1e-12);
}

TEST(Netlist, NetTerminalsDriverFirst) {
  Fixture f;
  const CellId d = f.nl.add_cell("d", f.buf);
  const CellId g = f.nl.add_cell("g", f.nor2);
  const NetId n = f.nl.add_net("n");
  (void)f.nl.connect(n, g, f.pin(g, "I0"));  // sink first on purpose
  (void)f.nl.connect(n, d, f.pin(d, "O"));
  const auto terms = f.nl.net_terminals(n);
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], f.nl.net(n).driver);
}

TEST(Netlist, DifferentialPairValidated) {
  Fixture f;
  const CellTypeId ddrv = f.nl.library().find("DDRV");
  const CellTypeId drcv = f.nl.library().find("DRCV");
  const CellId drv = f.nl.add_cell("drv", ddrv);
  const CellId rcv = f.nl.add_cell("rcv", drcv);
  const NetId nt = f.nl.add_net("nt");
  const NetId nc = f.nl.add_net("nc");
  (void)f.nl.connect(nt, drv, f.pin(drv, "OT"));
  (void)f.nl.connect(nc, drv, f.pin(drv, "OC"));
  (void)f.nl.connect(nt, rcv, f.pin(rcv, "IT"));
  (void)f.nl.connect(nc, rcv, f.pin(rcv, "IC"));
  f.nl.make_differential(nt, nc);
  EXPECT_TRUE(f.nl.net(nt).diff_primary);
  EXPECT_FALSE(f.nl.net(nc).diff_primary);
  EXPECT_EQ(f.nl.net(nt).diff_partner, nc);
  EXPECT_EQ(f.nl.net(nc).diff_partner, nt);
  f.nl.validate();
}

TEST(Netlist, DifferentialMismatchRejected) {
  Fixture f;
  const CellTypeId ddrv = f.nl.library().find("DDRV");
  const CellTypeId drcv = f.nl.library().find("DRCV");
  const CellId drv = f.nl.add_cell("drv", ddrv);
  const CellId rcv0 = f.nl.add_cell("rcv0", drcv);
  const CellId rcv1 = f.nl.add_cell("rcv1", drcv);
  const NetId nt = f.nl.add_net("nt");
  const NetId nc = f.nl.add_net("nc");
  (void)f.nl.connect(nt, drv, f.pin(drv, "OT"));
  (void)f.nl.connect(nc, drv, f.pin(drv, "OC"));
  (void)f.nl.connect(nt, rcv0, f.pin(rcv0, "IT"));
  (void)f.nl.connect(nc, rcv1, f.pin(rcv1, "IC"));  // different cell!
  EXPECT_THROW(f.nl.make_differential(nt, nc), CheckError);
}

TEST(Netlist, TerminalNames) {
  Fixture f;
  const CellId g = f.nl.add_cell("gate7", f.nor2);
  const NetId n = f.nl.add_net("n");
  const TerminalId t = f.nl.connect(n, g, f.pin(g, "I1"));
  EXPECT_EQ(f.nl.terminal_name(t), "gate7.I1");
  const TerminalId p = f.nl.add_pad_input("CLK", f.nl.add_net("x"), 1, 1);
  EXPECT_EQ(f.nl.terminal_name(p), "CLK");
}

}  // namespace
}  // namespace bgr

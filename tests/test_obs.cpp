// Unit tests of the observability layer: the JSON document model, the
// metrics registry (counters, histograms, scopes) and the span tracer.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "bgr/obs/json.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/obs/trace.hpp"

namespace bgr {
namespace {

TEST(Json, RoundTripsDocument) {
  JsonValue doc = JsonValue::object();
  doc.set("int", std::int64_t{42});
  doc.set("neg", std::int64_t{-7});
  doc.set("real", 2.5);
  doc.set("flag", true);
  doc.set("none", JsonValue());
  doc.set("text", "a \"quoted\" \\ line\nwith\tcontrol");
  JsonValue arr = JsonValue::array();
  arr.push_back(std::int64_t{1});
  arr.push_back("two");
  doc.set("arr", std::move(arr));
  doc["nested"].set("k", std::int64_t{3});

  for (const int indent : {-1, 0}) {
    const JsonValue back = json_parse(doc.dump(indent));
    EXPECT_EQ(back.at("int").as_int(), 42);
    EXPECT_EQ(back.at("neg").as_int(), -7);
    EXPECT_DOUBLE_EQ(back.at("real").as_double(), 2.5);
    EXPECT_TRUE(back.at("flag").as_bool());
    EXPECT_TRUE(back.at("none").is_null());
    EXPECT_EQ(back.at("text").as_string(), doc.at("text").as_string());
    EXPECT_EQ(back.at("arr").size(), 2u);
    EXPECT_EQ(back.at("arr").at(1).as_string(), "two");
    EXPECT_EQ(back.at("nested").at("k").as_int(), 3);
  }
}

TEST(Json, PreservesInsertionOrder) {
  JsonValue doc = JsonValue::object();
  doc.set("zebra", std::int64_t{1});
  doc.set("alpha", std::int64_t{2});
  doc.set("zebra", std::int64_t{3});  // replace keeps position
  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].first, "zebra");
  EXPECT_EQ(members[0].second.as_int(), 3);
  EXPECT_EQ(members[1].first, "alpha");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)json_parse(""), std::runtime_error);
  EXPECT_THROW((void)json_parse("{"), std::runtime_error);
  EXPECT_THROW((void)json_parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)json_parse("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW((void)json_parse("{'a': 1}"), std::runtime_error);
  EXPECT_THROW((void)json_parse("\"unterminated"), std::runtime_error);
}

TEST(Json, ParsesUnicodeEscapes) {
  const JsonValue v = json_parse("\"\\u0041\\u00e9\"");
  EXPECT_EQ(v.as_string(), "A\xc3\xa9");
}

TEST(Metrics, CounterSumsConcurrentAdds) {
  MetricsRegistry registry;
  Counter& c = registry.counter("t.counter", MetricScope::kSemantic);
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), std::int64_t{kThreads} * kAdds);
}

TEST(Metrics, HistogramBucketsAndExtremes) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("t.hist", MetricScope::kSemantic);
  for (const std::int64_t v : {0, 1, 2, 3, 4, 100, -5}) h.record(v);
  EXPECT_EQ(h.count(), 7);
  EXPECT_EQ(h.sum(), 110);  // the -5 clamps to 0
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.bucket(0), 2);  // 0 and -5
  EXPECT_EQ(h.bucket(1), 1);  // 1
  EXPECT_EQ(h.bucket(2), 2);  // 2, 3
  EXPECT_EQ(h.bucket(3), 1);  // 4
  EXPECT_EQ(h.bucket(7), 1);  // 100 in [64, 128)
  EXPECT_EQ(Histogram::bucket_lo(7), 64);

  const JsonValue json = h.to_json();
  EXPECT_EQ(json.at("count").as_int(), 7);
  EXPECT_EQ(json.at("buckets").size(), 5u);  // only non-empty buckets

  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Metrics, RegistrationIsIdempotentAndScopeChecked) {
  MetricsRegistry registry;
  Counter& a = registry.counter("t.same", MetricScope::kSemantic);
  Counter& b = registry.counter("t.same", MetricScope::kSemantic);
  EXPECT_EQ(&a, &b);
  EXPECT_THROW((void)registry.counter("t.same", MetricScope::kNonDeterministic),
               std::runtime_error);
  // Counters and histograms live in separate namespaces per kind, but a
  // histogram re-registered with another scope is equally an error.
  Histogram& h = registry.histogram("t.h", MetricScope::kNonDeterministic);
  EXPECT_EQ(&h, &registry.histogram("t.h", MetricScope::kNonDeterministic));
  EXPECT_THROW((void)registry.histogram("t.h", MetricScope::kSemantic),
               std::runtime_error);
}

TEST(Metrics, ResetKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& c = registry.counter("t.reset", MetricScope::kSemantic);
  c.add(5);
  registry.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(&c, &registry.counter("t.reset", MetricScope::kSemantic));
  ASSERT_EQ(registry.names().size(), 1u);
}

TEST(Metrics, ScopeJsonSplitsAndSorts) {
  MetricsRegistry registry;
  registry.counter("b.sem", MetricScope::kSemantic).add(1);
  registry.counter("a.sem", MetricScope::kSemantic).add(2);
  registry.counter("x.wall", MetricScope::kNonDeterministic).add(3);
  const JsonValue json = registry.to_json();
  const auto& sem = json.at("semantic").members();
  ASSERT_EQ(sem.size(), 2u);
  EXPECT_EQ(sem[0].first, "a.sem");  // sorted by name
  EXPECT_EQ(sem[1].first, "b.sem");
  ASSERT_EQ(json.at("nondeterministic").members().size(), 1u);
  EXPECT_EQ(json.at("nondeterministic").at("x.wall").as_int(), 3);
}

TEST(Trace, DisabledSpansRecordNothing) {
  Trace& trace = Trace::global();
  trace.disable();
  trace.clear();
  { ScopedSpan span("invisible", "test"); }
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, SpansNestAndSerializeAsChromeEvents) {
  Trace& trace = Trace::global();
  trace.clear();
  trace.enable();
  {
    ScopedSpan outer("outer", "test");
    { ScopedSpan inner("inner", "test"); }
    { ScopedSpan inner2("inner2", "test"); }
  }
  trace.disable();

  const auto events = trace.events();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by (ts, -dur): the enclosing span comes first.
  EXPECT_EQ(events[0].name, "outer");
  for (const Trace::Event& ev : events) {
    EXPECT_GE(ev.ts_us, 0);
    EXPECT_GE(ev.dur_us, 0);
    // Strict nesting against the outer span.
    EXPECT_GE(ev.ts_us, events[0].ts_us);
    EXPECT_LE(ev.ts_us + ev.dur_us, events[0].ts_us + events[0].dur_us);
  }

  // The serialized document parses back as Chrome trace-event JSON.
  const JsonValue doc = json_parse(trace.to_json().dump());
  const JsonValue& list = doc.at("traceEvents");
  ASSERT_TRUE(list.is_array());
  std::size_t complete = 0;
  std::size_t metadata = 0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    const JsonValue& ev = list.at(i);
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "X") {
      ++complete;
      EXPECT_GE(ev.at("ts").as_int(), 0);
      EXPECT_GE(ev.at("dur").as_int(), 0);
      EXPECT_FALSE(ev.at("name").as_string().empty());
    } else {
      EXPECT_EQ(ph, "M");
      ++metadata;
    }
  }
  EXPECT_EQ(complete, 3u);
  EXPECT_GE(metadata, 1u);
  trace.clear();
}

TEST(Trace, WorkerThreadsGetOwnIds) {
  Trace& trace = Trace::global();
  trace.clear();
  trace.enable();
  { ScopedSpan main_span("on-main", "test"); }
  std::thread worker([] { ScopedSpan span("on-worker", "test"); });
  worker.join();
  trace.disable();
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  trace.clear();
}

}  // namespace
}  // namespace bgr

// Regression pins on the paper's headline claims, evaluated on the C1P1
// dataset (the smallest full-scale preset, ~1 s per routing mode). These
// are shape assertions with generous tolerances — they fail when a change
// breaks the reproduction, not when a heuristic shifts by a percent.
#include <gtest/gtest.h>

#include "bgr/metrics/experiment.hpp"

namespace bgr {
namespace {

class PaperShape : public ::testing::Test {
 protected:
  static const RunResult& constrained() {
    static const RunResult r = run_flow(dataset(), true);
    return r;
  }
  static const RunResult& unconstrained() {
    static const RunResult r = run_flow(dataset(), false);
    return r;
  }
  static const Dataset& dataset() {
    static const Dataset ds = make_dataset("C1P1");
    return ds;
  }
};

TEST_F(PaperShape, ConstrainedReducesCriticalDelay) {
  // Paper Table 2: every constrained run beats its unconstrained twin.
  EXPECT_LT(constrained().delay_ps, unconstrained().delay_ps);
}

TEST_F(PaperShape, ImprovementWithinPaperRange) {
  // Paper: 0.56 % .. 23.5 %. Give margin on both sides.
  const double gain = (unconstrained().delay_ps - constrained().delay_ps) /
                      unconstrained().delay_ps * 100.0;
  EXPECT_GT(gain, 0.2);
  EXPECT_LT(gain, 30.0);
}

TEST_F(PaperShape, AreaAlmostUnchanged) {
  // Paper: "the area was almost unchanged".
  const double ratio = constrained().area_mm2 / unconstrained().area_mm2;
  EXPECT_GT(ratio, 0.90);
  EXPECT_LT(ratio, 1.10);
}

TEST_F(PaperShape, ConstrainedGapNearLowerBound) {
  // Paper Table 3: constrained gaps below ~10 % or less than half the
  // unconstrained gap. C1P1 lands in the ~10 % regime; pin loosely.
  EXPECT_LT(constrained().gap_to_lower_bound_percent(), 18.0);
  EXPECT_LT(constrained().gap_to_lower_bound_percent(),
            unconstrained().gap_to_lower_bound_percent());
}

TEST_F(PaperShape, NoConstraintViolationsOnC1) {
  EXPECT_EQ(constrained().violated_constraints, 0);
}

TEST_F(PaperShape, FeedCellInsertionEngaged) {
  // The bipolar flow must have exercised §4.3 on this dataset.
  EXPECT_GT(constrained().feed_cells_added, 0);
  EXPECT_GT(constrained().widen_pitches, 0);
}

TEST_F(PaperShape, ConstrainedCostsMoreCpuThanUnconstrained) {
  // The delay machinery has a real price (paper Table 2's CPU column shows
  // the same asymmetry).
  EXPECT_GT(constrained().cpu_s, unconstrained().cpu_s);
}

}  // namespace
}  // namespace bgr

// The exec/ determinism contract, end to end: the full router pipeline
// must produce a bit-identical RouteOutcome — critical delay, total
// length, violations, feed cells, per-phase deletion counts, and per-net
// routed lengths — for 1 and N threads, on several generated designs.
#include <vector>

#include <gtest/gtest.h>

#include "bgr/gen/generator.hpp"
#include "bgr/route/router.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

struct RunResultSnapshot {
  RouteOutcome outcome;
  std::vector<double> net_lengths_um;
};

RunResultSnapshot route_design(Dataset design, RouterOptions options,
                               std::int32_t threads) {
  options.threads = threads;
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  RunResultSnapshot snap;
  snap.outcome = router.run();
  for (const NetId n : design.netlist.nets()) {
    snap.net_lengths_um.push_back(router.net_length_um(n));
  }
  return snap;
}

/// Regenerates the design per run: the router inserts feed cells into the
/// netlist it routes, so the two thread counts must not share one Dataset.
RunResultSnapshot route_with_threads(const CircuitSpec& spec,
                                     RouterOptions options,
                                     std::int32_t threads) {
  return route_design(generate_circuit(spec), options, threads);
}

void expect_bit_identical(const RunResultSnapshot& a,
                          const RunResultSnapshot& b) {
  // EXPECT_EQ on doubles throughout: the contract is bit-identity, not
  // tolerance.
  EXPECT_EQ(a.outcome.critical_delay_ps, b.outcome.critical_delay_ps);
  EXPECT_EQ(a.outcome.total_length_um, b.outcome.total_length_um);
  EXPECT_EQ(a.outcome.violated_constraints, b.outcome.violated_constraints);
  EXPECT_EQ(a.outcome.worst_margin_ps, b.outcome.worst_margin_ps);
  EXPECT_EQ(a.outcome.feed_cells_added, b.outcome.feed_cells_added);
  EXPECT_EQ(a.outcome.widen_pitches, b.outcome.widen_pitches);
  ASSERT_EQ(a.outcome.phases.size(), b.outcome.phases.size());
  for (std::size_t i = 0; i < a.outcome.phases.size(); ++i) {
    const PhaseStats& pa = a.outcome.phases[i];
    const PhaseStats& pb = b.outcome.phases[i];
    EXPECT_EQ(pa.deletions, pb.deletions) << pa.name;
    EXPECT_EQ(pa.reroutes, pb.reroutes) << pa.name;
    EXPECT_EQ(pa.critical_delay_ps, pb.critical_delay_ps) << pa.name;
    EXPECT_EQ(pa.sum_max_density, pb.sum_max_density) << pa.name;
  }
  ASSERT_EQ(a.net_lengths_um.size(), b.net_lengths_um.size());
  for (std::size_t i = 0; i < a.net_lengths_um.size(); ++i) {
    EXPECT_EQ(a.net_lengths_um[i], b.net_lengths_um[i]) << "net " << i;
  }
}

TEST(ParallelDeterminism, SmallDesignsOneVsFourThreads) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const CircuitSpec spec = testutil::small_spec(seed);
    const auto serial = route_with_threads(spec, RouterOptions{}, 1);
    const auto parallel = route_with_threads(spec, RouterOptions{}, 4);
    expect_bit_identical(serial, parallel);
  }
}

TEST(ParallelDeterminism, EightThreadsAndOddCounts) {
  const CircuitSpec spec = testutil::small_spec(11);
  const auto serial = route_with_threads(spec, RouterOptions{}, 1);
  for (const std::int32_t threads : {2, 3, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_bit_identical(serial,
                         route_with_threads(spec, RouterOptions{}, threads));
  }
}

TEST(ParallelDeterminism, ElmoreRcModel) {
  const CircuitSpec spec = testutil::small_spec(5);
  RouterOptions options;
  options.delay_model = DelayModel::kElmoreRC;
  expect_bit_identical(route_with_threads(spec, options, 1),
                       route_with_threads(spec, options, 4));
}

TEST(ParallelDeterminism, SequentialBaselineAndNetBudgets) {
  const CircuitSpec spec = testutil::small_spec(9);
  {
    RouterOptions options;
    options.concurrent_initial = false;
    expect_bit_identical(route_with_threads(spec, options, 1),
                         route_with_threads(spec, options, 4));
  }
  {
    RouterOptions options;
    options.use_net_budgets = true;
    expect_bit_identical(route_with_threads(spec, options, 1),
                         route_with_threads(spec, options, 4));
  }
}

TEST(ParallelDeterminism, PaperPresetC1P1) {
  const auto serial = route_design(make_dataset("C1P1"), RouterOptions{}, 1);
  const auto parallel = route_design(make_dataset("C1P1"), RouterOptions{}, 4);
  expect_bit_identical(serial, parallel);
}

}  // namespace
}  // namespace bgr

// Differential battery for the path-search engines (DESIGN.md §11): on
// dozens of fuzz-sampled designs, every engine enumerated by
// testutil::all_path_search_engines() is swept automatically — members of
// the bit-identical family must reproduce the reference binary-heap
// Dijkstra exactly (per-search tentative trees during live routing, and
// the full pipeline outcome: delay, length, margins, per-net routed
// lengths, per-phase deletion counts), and every engine must be
// bit-identical to itself across 1 and 8 threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bgr/fuzz/spec_sampler.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/route/path_search.hpp"
#include "bgr/route/router.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

struct PipelineSnapshot {
  RouteOutcome outcome;
  std::vector<double> net_lengths_um;
  std::vector<double> margins_ps;
};

PipelineSnapshot route_pipeline(const CircuitSpec& spec,
                                PathSearchBackend backend,
                                std::int32_t threads) {
  Dataset design = generate_circuit(spec);
  RouterOptions options;
  options.path_search = backend;
  options.threads = threads;
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  PipelineSnapshot snap;
  snap.outcome = router.run();
  for (const NetId n : design.netlist.nets()) {
    snap.net_lengths_um.push_back(router.net_length_um(n));
  }
  for (const ConstraintId p : router.analyzer().constraints()) {
    snap.margins_ps.push_back(router.analyzer().margin_ps(p));
  }
  return snap;
}

/// Bit-identity of everything the router decided. `compare_path_effort`
/// is off across backends (different pop counts are A*'s whole point) and
/// on across thread counts (the same searches must run either way).
void expect_identical(const PipelineSnapshot& a, const PipelineSnapshot& b,
                      bool compare_path_effort) {
  EXPECT_EQ(a.outcome.critical_delay_ps, b.outcome.critical_delay_ps);
  EXPECT_EQ(a.outcome.total_length_um, b.outcome.total_length_um);
  EXPECT_EQ(a.outcome.violated_constraints, b.outcome.violated_constraints);
  EXPECT_EQ(a.outcome.worst_margin_ps, b.outcome.worst_margin_ps);
  EXPECT_EQ(a.outcome.feed_cells_added, b.outcome.feed_cells_added);
  EXPECT_EQ(a.outcome.widen_pitches, b.outcome.widen_pitches);
  ASSERT_EQ(a.outcome.phases.size(), b.outcome.phases.size());
  for (std::size_t i = 0; i < a.outcome.phases.size(); ++i) {
    const PhaseStats& pa = a.outcome.phases[i];
    const PhaseStats& pb = b.outcome.phases[i];
    EXPECT_EQ(pa.deletions, pb.deletions) << pa.name;
    EXPECT_EQ(pa.reroutes, pb.reroutes) << pa.name;
    EXPECT_EQ(pa.critical_delay_ps, pb.critical_delay_ps) << pa.name;
    EXPECT_EQ(pa.worst_margin_ps, pb.worst_margin_ps) << pa.name;
    EXPECT_EQ(pa.sum_max_density, pb.sum_max_density) << pa.name;
    EXPECT_EQ(pa.sta_relaxations, pb.sta_relaxations) << pa.name;
    if (compare_path_effort) {
      EXPECT_EQ(pa.path_searches, pb.path_searches) << pa.name;
      EXPECT_EQ(pa.path_pops, pb.path_pops) << pa.name;
      EXPECT_EQ(pa.path_relaxations, pb.path_relaxations) << pa.name;
    }
  }
  EXPECT_EQ(a.net_lengths_um, b.net_lengths_um);
  EXPECT_EQ(a.margins_ps, b.margins_ps);
}

/// Runs both backends standalone on the net's *current* graph (mid-
/// routing, so with real deletions applied) for the no-skip search and a
/// handful of candidate skip edges, and requires bit-identical trees —
/// the raw searches AND the engine's cache-backed cone repair, which must
/// agree with the reference no matter which internal path (cached tree,
/// empty-cone reuse, boundary-seeded repair) answers the query.
void compare_backends_on_graph(const RoutingGraph& g, std::int64_t step) {
  const SmallGraph& sg = g.graph();
  const GoalHeuristic heuristic = build_goal_heuristic(
      sg, g.driver_vertex(), g.terminal_vertices());
  PathSearchScratch dijkstra_scratch;
  PathSearchScratch astar_scratch;
  PathSearchEngine engine(PathSearchBackend::kAstar, nullptr);
  SearchCache cache;
  engine.refresh_cache(sg, g.driver_vertex(), g.terminal_vertices(), &cache);

  std::vector<std::int32_t> skips{SmallGraph::kNone};
  for (const std::int32_t e : g.non_bridge_edges()) {
    skips.push_back(e);
    if (skips.size() >= 9) break;
  }
  for (const std::int32_t skip : skips) {
    std::vector<std::int32_t> dijkstra_tree;
    std::vector<std::int32_t> astar_tree;
    std::vector<std::int32_t> cached_tree;
    (void)path_search_tree(sg, PathSearchBackend::kDijkstra, nullptr,
                           g.driver_vertex(), g.terminal_vertices(), skip,
                           dijkstra_scratch, &dijkstra_tree);
    (void)path_search_tree(sg, PathSearchBackend::kAstar, &heuristic,
                           g.driver_vertex(), g.terminal_vertices(), skip,
                           astar_scratch, &astar_tree);
    engine.tentative_tree(sg, &heuristic, &cache, g.driver_vertex(),
                          g.terminal_vertices(), skip, &cached_tree);
    ASSERT_EQ(dijkstra_tree, astar_tree)
        << "tentative trees diverged at deletion step " << step << ", skip "
        << skip;
    ASSERT_EQ(dijkstra_tree, cached_tree)
        << "cone repair diverged at deletion step " << step << ", skip "
        << skip;
  }
}

TEST(PathSearchDifferential, TentativeTreesBitIdenticalDuringRouting) {
  for (const std::uint64_t seed : {1, 2, 3, 5, 8, 13, 21, 34, 55, 89}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Dataset design = generate_circuit(sample_spec(seed));

    std::unique_ptr<GlobalRouter> router;
    std::int64_t steps = 0;
    RouterOptions options;
    options.deletion_observer = [&](NetId net, std::int32_t) {
      if (::testing::Test::HasFatalFailure()) return;
      // Every committed deletion changes some graph; cross-check the first
      // few dozen states so the battery stays fast.
      if (++steps > 40) return;
      compare_backends_on_graph(router->net_graph(net), steps);
    };
    router = std::make_unique<GlobalRouter>(design.netlist,
                                            std::move(design.placement),
                                            design.tech, design.constraints,
                                            options);
    (void)router->run();
    EXPECT_GT(steps, 0) << "observer never fired (seed " << seed << ")";
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(PathSearchDifferential, PipelineBitIdenticalAcrossBackends) {
  const std::vector<testutil::EngineInfo> engines =
      testutil::all_path_search_engines();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const CircuitSpec spec = sample_spec(seed);
    const PipelineSnapshot reference =
        route_pipeline(spec, PathSearchBackend::kDijkstra, 1);
    for (const testutil::EngineInfo& engine : engines) {
      SCOPED_TRACE(engine.name);
      const bool is_reference =
          engine.backend == PathSearchBackend::kDijkstra;
      // Engines outside the bit-identical family only join the (cheaper)
      // every-fifth-seed thread sweep here; the rest of their contract
      // lives in their own oracle battery (test_steiner).
      if (!engine.bit_identical_to_reference && seed % 5 != 0) continue;
      const PipelineSnapshot serial =
          is_reference ? reference : route_pipeline(spec, engine.backend, 1);
      if (engine.bit_identical_to_reference && !is_reference) {
        expect_identical(serial, reference, /*compare_path_effort=*/false);
      }
      // Every fifth seed also crosses thread counts, per engine: the
      // per-slot arenas must not leak state between searches.
      if (seed % 5 == 0) {
        expect_identical(serial, route_pipeline(spec, engine.backend, 8),
                         /*compare_path_effort=*/true);
      }
    }
  }
}

}  // namespace
}  // namespace bgr

#include "bgr/layout/placement.hpp"

#include <gtest/gtest.h>

namespace bgr {
namespace {

struct Fixture {
  Netlist nl{Library::make_ecl_default()};
  CellTypeId nor2 = nl.library().find("NOR2");  // width 3
  CellTypeId feed = nl.library().find("FEED");  // width 1
};

TEST(Placement, PlaceAndQuery) {
  Fixture f;
  Placement pl(2, 20);
  const CellId g = f.nl.add_cell("g", f.nor2);
  pl.place(f.nl, g, RowId{1}, 4);
  EXPECT_TRUE(pl.is_placed(g));
  EXPECT_EQ(pl.placed(g).row, RowId{1});
  EXPECT_EQ(pl.placed(g).x, 4);
  EXPECT_EQ(pl.placed(g).width, 3);
  EXPECT_TRUE(pl.column_blocked(RowId{1}, 4));
  EXPECT_TRUE(pl.column_blocked(RowId{1}, 6));
  EXPECT_FALSE(pl.column_blocked(RowId{1}, 7));
  EXPECT_FALSE(pl.column_blocked(RowId{0}, 4));
}

TEST(Placement, FeedCellDoesNotBlock) {
  Fixture f;
  Placement pl(1, 10);
  const CellId fd = f.nl.add_cell("fd", f.feed);
  pl.place(f.nl, fd, RowId{0}, 3);
  EXPECT_FALSE(pl.column_blocked(RowId{0}, 3));
}

TEST(Placement, OverlapRejected) {
  Fixture f;
  Placement pl(1, 20);
  const CellId a = f.nl.add_cell("a", f.nor2);
  const CellId b = f.nl.add_cell("b", f.nor2);
  pl.place(f.nl, a, RowId{0}, 4);
  EXPECT_THROW(pl.place(f.nl, b, RowId{0}, 6), CheckError);
  pl.place(f.nl, b, RowId{0}, 7);  // touching is fine
}

TEST(Placement, OutOfBoundsRejected) {
  Fixture f;
  Placement pl(1, 10);
  const CellId a = f.nl.add_cell("a", f.nor2);
  EXPECT_THROW(pl.place(f.nl, a, RowId{0}, 8), CheckError);
}

TEST(Placement, DoublePlacementRejected) {
  Fixture f;
  Placement pl(1, 20);
  const CellId a = f.nl.add_cell("a", f.nor2);
  pl.place(f.nl, a, RowId{0}, 0);
  EXPECT_THROW(pl.place(f.nl, a, RowId{0}, 10), CheckError);
}

TEST(Placement, RowCellsSortedByX) {
  Fixture f;
  Placement pl(1, 30);
  const CellId a = f.nl.add_cell("a", f.nor2);
  const CellId b = f.nl.add_cell("b", f.nor2);
  const CellId c = f.nl.add_cell("c", f.nor2);
  pl.place(f.nl, b, RowId{0}, 10);
  pl.place(f.nl, a, RowId{0}, 2);
  pl.place(f.nl, c, RowId{0}, 20);
  EXPECT_EQ(pl.row_cells(RowId{0}), (std::vector<CellId>{a, b, c}));
}

TEST(Placement, TerminalColumnUsesPinOffset) {
  Fixture f;
  Placement pl(1, 20);
  const CellId g = f.nl.add_cell("g", f.nor2);
  const NetId n = f.nl.add_net("n");
  const PinId out = f.nl.cell_type(g).find_pin("O");  // offset 2 on NOR2
  const TerminalId t = f.nl.connect(n, g, out);
  pl.place(f.nl, g, RowId{0}, 5);
  EXPECT_EQ(pl.terminal_column(f.nl, t),
            5 + f.nl.cell_type(g).pin(out).offset);
}

TEST(Placement, ColumnFlags) {
  Fixture f;
  Placement pl(2, 10);
  EXPECT_EQ(pl.column_flag(RowId{0}, 3), 0);
  pl.set_column_flag(RowId{0}, 3, 2);
  EXPECT_EQ(pl.column_flag(RowId{0}, 3), 2);
  EXPECT_EQ(pl.column_flag(RowId{1}, 3), 0);
  pl.clear_column_flags();
  EXPECT_EQ(pl.column_flag(RowId{0}, 3), 0);
}

TEST(Placement, PadSites) {
  Fixture f;
  Placement pl(2, 40);
  const NetId n = f.nl.add_net("n");
  const TerminalId pad = f.nl.add_pad_input("A", n, 1, 1);
  pl.place_pad(pad, true, IntInterval{5, 15});
  EXPECT_FALSE(pl.pad_site(pad).assigned());
  pl.pad_site(pad).assigned_x = 9;
  EXPECT_TRUE(pl.pad_site(pad).assigned());
  EXPECT_EQ(pl.terminal_column(f.nl, pad), 9);
}

TEST(Placement, ChipGeometry) {
  Fixture f;
  TechParams tech;
  Placement pl(3, 100);
  EXPECT_DOUBLE_EQ(pl.chip_width_um(tech), 300.0);
  // 3 rows of 60 um plus 4 channels with (tracks+1)*3 um.
  const std::vector<std::int32_t> tracks{9, 9, 9, 9};
  EXPECT_DOUBLE_EQ(pl.chip_height_um(tech, tracks), 3 * 60.0 + 4 * 30.0);
}

TEST(Placement, ValidateFindsUnplacedCell) {
  Fixture f;
  Placement pl(1, 20);
  (void)f.nl.add_cell("ghost", f.nor2);
  EXPECT_THROW(pl.validate(f.nl), CheckError);
}

TEST(Placement, FreeColumnCount) {
  Fixture f;
  Placement pl(1, 10);
  const CellId a = f.nl.add_cell("a", f.nor2);
  pl.place(f.nl, a, RowId{0}, 0);
  const CellId fd = f.nl.add_cell("fd", f.feed);
  pl.place(f.nl, fd, RowId{0}, 5);
  EXPECT_EQ(pl.free_column_count(RowId{0}), 7);  // 10 - 3 blocked
}

}  // namespace
}  // namespace bgr

#include "bgr/place/force_placer.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace bgr {
namespace {

struct PlacerFixture {
  Dataset ds = generate_circuit(testutil::small_spec(31));

  PlacerRows run(std::int32_t passes, std::uint64_t seed = 5) const {
    Rng rng(seed);
    PlacerOptions options;
    options.passes = passes;
    return force_directed_rows(ds.netlist, 5, 5.0, {}, {}, rng, options);
  }
};

TEST(ForcePlacer, EveryCellPlacedExactlyOnce) {
  PlacerFixture f;
  const PlacerRows rows = f.run(8);
  std::vector<int> count(static_cast<std::size_t>(f.ds.netlist.cell_count()), 0);
  for (const auto& row : rows.row_order) {
    for (const CellId c : row) ++count[c.index()];
  }
  for (const int n : count) EXPECT_EQ(n, 1);
}

TEST(ForcePlacer, RowsBalancedByWidth) {
  PlacerFixture f;
  const PlacerRows rows = f.run(8);
  std::vector<double> widths;
  double total = 0.0;
  for (const auto& row : rows.row_order) {
    double w = 0.0;
    for (const CellId c : row) w += f.ds.netlist.cell_type(c).width();
    widths.push_back(w);
    total += w;
  }
  const double share = total / static_cast<double>(widths.size());
  for (const double w : widths) {
    EXPECT_GT(w, share * 0.5);
    EXPECT_LT(w, share * 1.5);
  }
}

TEST(ForcePlacer, IterationImprovesHpwl) {
  PlacerFixture f;
  const double bad = ordering_hpwl(f.ds.netlist, f.run(0));
  const double good = ordering_hpwl(f.ds.netlist, f.run(24));
  EXPECT_LT(good, bad);
}

TEST(ForcePlacer, DeterministicInSeed) {
  PlacerFixture f;
  const PlacerRows a = f.run(12, 7);
  const PlacerRows b = f.run(12, 7);
  ASSERT_EQ(a.row_order.size(), b.row_order.size());
  for (std::size_t r = 0; r < a.row_order.size(); ++r) {
    EXPECT_EQ(a.row_order[r], b.row_order[r]);
  }
}

TEST(ForcePlacer, HintsSeedRows) {
  PlacerFixture f;
  // Strong hints with zero passes must be honoured verbatim: cells hinted
  // to level 0 land in the bottom rows.
  const auto n_cells = static_cast<std::size_t>(f.ds.netlist.cell_count());
  std::vector<double> level(n_cells, 0.0);
  for (std::size_t i = n_cells / 2; i < n_cells; ++i) level[i] = 5.0;
  Rng rng(3);
  PlacerOptions options;
  options.passes = 0;
  const PlacerRows rows =
      force_directed_rows(f.ds.netlist, 5, 5.0, level, {}, rng, options);
  // The bottom rows must be dominated by low-hint cells.
  int low_in_bottom = 0;
  int total_bottom = 0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (const CellId c : rows.row_order[r]) {
      ++total_bottom;
      if (level[c.index()] == 0.0) ++low_in_bottom;
    }
  }
  EXPECT_GT(low_in_bottom, total_bottom * 8 / 10);
}

TEST(ForcePlacer, OrderingHpwlSensibleOnHandCase) {
  // Two connected cells in the same row adjacent vs far apart.
  Netlist nl{Library::make_ecl_default()};
  const CellTypeId buf = nl.library().find("BUF1");
  const CellId a = nl.add_cell("a", buf);
  const CellId b = nl.add_cell("b", buf);
  const CellId c = nl.add_cell("c", buf);
  const NetId n = nl.add_net("n");
  (void)nl.connect(n, a, nl.cell_type(a).find_pin("O"));
  (void)nl.connect(n, b, nl.cell_type(b).find_pin("I0"));
  const NetId n2 = nl.add_net("n2");
  (void)nl.connect(n2, b, nl.cell_type(b).find_pin("O"));
  (void)nl.connect(n2, c, nl.cell_type(c).find_pin("I0"));

  PlacerRows adjacent;
  adjacent.row_order = {{a, b, c}};
  PlacerRows split;
  split.row_order = {{a, c, b}};
  EXPECT_LT(ordering_hpwl(nl, adjacent), ordering_hpwl(nl, split));
}

}  // namespace
}  // namespace bgr

#include "bgr/metrics/report.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "bgr/metrics/experiment.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

struct RoutedFixture {
  Dataset ds = generate_circuit(testutil::small_spec(401));
  Netlist nl = ds.netlist;
  GlobalRouter router{nl, ds.placement, ds.tech, ds.constraints,
                      RouterOptions{}};
  RouteOutcome outcome = router.run();
  ChannelStage channel{router};
  RoutedFixture() { channel.run(); }
};

TEST(Report, CountsMatchNetlist) {
  RoutedFixture f;
  const RouteStats stats = collect_stats(f.router, f.channel);
  EXPECT_EQ(stats.cells, f.nl.cell_count());
  EXPECT_EQ(stats.nets, f.nl.net_count());
  std::int32_t feeds = 0;
  for (const CellId c : f.nl.cells()) {
    if (f.nl.cell_type(c).is_feed()) ++feeds;
  }
  EXPECT_EQ(stats.feed_cells, feeds);
  EXPECT_GT(stats.pads, 0);
  EXPECT_GT(stats.max_fanout, 1);
  EXPECT_GT(stats.mean_fanout, 0.9);
}

TEST(Report, LengthsConsistentWithChannelStage) {
  RoutedFixture f;
  const RouteStats stats = collect_stats(f.router, f.channel);
  EXPECT_NEAR(stats.total_um, f.channel.total_detailed_length_um(), 1e-6);
  EXPECT_GE(stats.max_um, stats.mean_um);
  // Histogram covers every net exactly once.
  const auto total = std::accumulate(stats.length_histogram.begin(),
                                     stats.length_histogram.end(), 0);
  EXPECT_EQ(total, stats.nets);
  // The decile of the longest net is populated.
  EXPECT_GE(stats.length_histogram.back(), 1);
}

TEST(Report, UtilisationWithinBounds) {
  RoutedFixture f;
  const RouteStats stats = collect_stats(f.router, f.channel);
  EXPECT_GT(stats.max_tracks, 0);
  EXPECT_GT(stats.track_utilisation, 0.3);
  EXPECT_LE(stats.track_utilisation, 1.0 + 1e-9);
}

TEST(Report, PrintsEveryBlock) {
  RoutedFixture f;
  const RouteStats stats = collect_stats(f.router, f.channel);
  std::ostringstream oss;
  print_stats(oss, stats);
  const std::string out = oss.str();
  for (const char* needle :
       {"cells", "nets", "wire length", "channel tracks", "timing"}) {
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace bgr

#include "bgr/common/rng.hpp"

#include <gtest/gtest.h>

namespace bgr {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, Uniform01Range) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(Rng, GeometricCapped) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.geometric(0.5, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

}  // namespace
}  // namespace bgr

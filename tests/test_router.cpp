#include "bgr/route/router.hpp"

#include <gtest/gtest.h>

#include "bgr/gen/generator.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

/// End-to-end invariants of the global router over a sweep of generated
/// circuits (TEST_P over seeds).
class RouterProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Dataset dataset_ = generate_circuit(testutil::small_spec(GetParam()));
};

TEST_P(RouterProperty, AllNetsReducedToTrees) {
  Netlist nl = dataset_.netlist;
  GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                      dataset_.constraints, RouterOptions{});
  const RouteOutcome outcome = router.run();
  EXPECT_GT(outcome.total_length_um, 0.0);
  for (const NetId n : nl.nets()) {
    const RoutingGraph& g = router.net_graph(n);
    EXPECT_TRUE(g.is_tree());
    EXPECT_TRUE(g.graph().connects(g.terminal_vertices()));
    EXPECT_TRUE(g.non_bridge_edges().empty());
  }
}

TEST_P(RouterProperty, DensityMapMatchesFinalTrees) {
  Netlist nl = dataset_.netlist;
  GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                      dataset_.constraints, RouterOptions{});
  (void)router.run();
  // Recompute d_M from scratch out of the final trees and compare.
  const DensityMap& incremental = router.density();
  DensityMap fresh(router.placement().channel_count(),
                   router.placement().width());
  for (const NetId n : nl.nets()) {
    const RoutingGraph& g = router.net_graph(n);
    for (const auto e : g.alive_edges()) {
      const RouteEdgeInfo& info = g.edge_info(e);
      if (!info.is_trunk()) continue;
      fresh.add_total(info.channel, info.span, nl.net(n).pitch_width);
      // Every edge of a tree is a bridge.
      EXPECT_TRUE(g.is_bridge(e));
      fresh.add_bridge(info.channel, info.span, nl.net(n).pitch_width);
    }
  }
  for (std::int32_t c = 0; c < fresh.channel_count(); ++c) {
    for (std::int32_t x = 0; x < fresh.width(); ++x) {
      ASSERT_EQ(incremental.total_at(c, x), fresh.total_at(c, x))
          << "channel " << c << " column " << x;
      ASSERT_EQ(incremental.bridge_at(c, x), fresh.bridge_at(c, x))
          << "channel " << c << " column " << x;
    }
  }
}

TEST_P(RouterProperty, DifferentialPairsStayMirrored) {
  Netlist nl = dataset_.netlist;
  GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                      dataset_.constraints, RouterOptions{});
  (void)router.run();
  for (const NetId n : nl.nets()) {
    const Net& net = nl.net(n);
    if (!net.is_differential() || !net.diff_primary) continue;
    const RoutingGraph& a = router.net_graph(n);
    const RoutingGraph& b = router.net_graph(net.diff_partner);
    ASSERT_EQ(a.graph().edge_count(), b.graph().edge_count());
    for (std::int32_t e = 0; e < a.graph().edge_count(); ++e) {
      ASSERT_EQ(a.graph().edge_alive(e), b.graph().edge_alive(e))
          << "pair " << net.name << " diverged at edge " << e;
      if (a.graph().edge_alive(e)) {
        EXPECT_EQ(a.edge_info(e).span.lo + 1, b.edge_info(e).span.lo);
      }
    }
  }
}

TEST_P(RouterProperty, DeterministicAcrossRuns) {
  RouteOutcome first;
  RouteOutcome second;
  {
    Netlist nl = dataset_.netlist;
    GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                        dataset_.constraints, RouterOptions{});
    first = router.run();
  }
  {
    Netlist nl = dataset_.netlist;
    GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                        dataset_.constraints, RouterOptions{});
    second = router.run();
  }
  EXPECT_DOUBLE_EQ(first.critical_delay_ps, second.critical_delay_ps);
  EXPECT_DOUBLE_EQ(first.total_length_um, second.total_length_um);
}

TEST_P(RouterProperty, UnconstrainedModeIgnoresConstraints) {
  Netlist nl = dataset_.netlist;
  RouterOptions options;
  options.use_constraints = false;
  GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                      dataset_.constraints, options);
  const RouteOutcome outcome = router.run();
  EXPECT_EQ(outcome.violated_constraints, 0);
  EXPECT_EQ(router.analyzer().constraint_count(), 0);
}

TEST_P(RouterProperty, ConstrainedNoWorseOnWorstMargin) {
  // The timing-driven mode must not lose to the area baseline on the
  // constraint margins (measured with the router's own estimates).
  double margin_con = 0.0;
  double margin_unc = 0.0;
  {
    Netlist nl = dataset_.netlist;
    GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                        dataset_.constraints, RouterOptions{});
    margin_con = router.run().worst_margin_ps;
  }
  {
    Netlist nl = dataset_.netlist;
    RouterOptions options;
    options.use_constraints = false;
    GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                        dataset_.constraints, options);
    (void)router.run();
    // Re-measure the margins of the real constraint set on the baseline
    // result.
    TimingAnalyzer check(router.delay_graph(), dataset_.constraints);
    margin_unc = check.worst_margin_ps();
  }
  EXPECT_GE(margin_con, margin_unc - 1e-6);
}

TEST_P(RouterProperty, PhasesReported) {
  Netlist nl = dataset_.netlist;
  GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                      dataset_.constraints, RouterOptions{});
  const RouteOutcome outcome = router.run();
  ASSERT_EQ(outcome.phases.size(), 4u);
  EXPECT_EQ(outcome.phases[0].name, "initial");
  EXPECT_GT(outcome.phases[0].deletions, 0);
  EXPECT_EQ(outcome.phases[3].name, "improve_area");
}

TEST_P(RouterProperty, RunIsSingleShot) {
  Netlist nl = dataset_.netlist;
  GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                      dataset_.constraints, RouterOptions{});
  EXPECT_EQ(router.run_state(), GlobalRouter::RunState::kIdle);
  (void)router.run();
  EXPECT_EQ(router.run_state(), GlobalRouter::RunState::kDone);
  // Re-entry is an explicit contract violation with a diagnostic that
  // names the fix, not silent corruption of consumed inputs.
  try {
    (void)router.run();
    FAIL() << "second run() must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("RoutingSession"), std::string::npos)
        << "diagnostic should point at serve::RoutingSession for re-runs";
  }
}

TEST_P(RouterProperty, CancelRequestStopsAtPhaseBoundary) {
  Netlist nl = dataset_.netlist;
  RouterOptions options;
  std::int32_t polls = 0;
  // Cancel at the second poll: after the pre-flight checks, inside the
  // phase sequence — the router must surface CancelledError (not
  // CheckError) and stay poisoned (kRunning, not kDone).
  options.cancel_requested = [&polls] { return ++polls > 1; };
  GlobalRouter router(nl, dataset_.placement, dataset_.tech,
                      dataset_.constraints, options);
  EXPECT_THROW((void)router.run(), CancelledError);
  EXPECT_EQ(router.run_state(), GlobalRouter::RunState::kRunning);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace bgr

#include <gtest/gtest.h>

#include "bgr/metrics/experiment.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

TEST(RouterEdge, NoConstraintsAtAll) {
  CircuitSpec spec = testutil::small_spec(201);
  spec.path_constraints = 0;
  Dataset ds = generate_circuit(spec);
  EXPECT_TRUE(ds.constraints.empty());
  const RunResult r = run_flow(ds, /*constrained=*/true);
  EXPECT_GT(r.delay_ps, 0.0);
  EXPECT_EQ(r.violated_constraints, 0);
}

TEST(RouterEdge, NoBipolarFeatures) {
  CircuitSpec spec = testutil::small_spec(202);
  spec.diff_pairs = 0;
  spec.clock_buffers = 1;  // at least one clock domain is required for FFs
  const Dataset ds = generate_circuit(spec);
  const RunResult r = run_flow(ds, true);
  EXPECT_GT(r.delay_ps, 0.0);
}

TEST(RouterEdge, TwoRowChip) {
  CircuitSpec spec = testutil::small_spec(203);
  spec.rows = 2;
  spec.target_cells = 60;
  const Dataset ds = generate_circuit(spec);
  const RunResult r = run_flow(ds, true);
  EXPECT_GT(r.delay_ps, 0.0);
  EXPECT_GT(r.area_mm2, 0.0);
}

TEST(RouterEdge, ZeroImprovementPasses) {
  const Dataset ds = generate_circuit(testutil::small_spec(204));
  RouterOptions options;
  options.improvement_passes = 0;
  const RunResult r = run_flow(ds, true, options);
  EXPECT_GT(r.delay_ps, 0.0);
  for (const PhaseStats& ph : r.phases) {
    if (ph.name != "initial") {
      EXPECT_EQ(ph.reroutes, 0);
    }
  }
}

TEST(RouterEdge, ElmorePlusSequential) {
  const Dataset ds = generate_circuit(testutil::small_spec(205));
  RouterOptions options;
  options.delay_model = DelayModel::kElmoreRC;
  options.concurrent_initial = false;
  const RunResult r = run_flow(ds, true, options);
  EXPECT_GT(r.delay_ps, 0.0);
}

TEST(RouterEdge, BudgetsPlusElmore) {
  const Dataset ds = generate_circuit(testutil::small_spec(206));
  RouterOptions options;
  options.delay_model = DelayModel::kElmoreRC;
  options.use_net_budgets = true;
  const RunResult r = run_flow(ds, true, options);
  EXPECT_GT(r.delay_ps, 0.0);
}

TEST(RouterEdge, TinyTwoNetDesign) {
  // Smallest meaningful design: one gate between two pads plus clocked
  // register — exercises pad assignment, single crossings, channel stage.
  Netlist nl{Library::make_ecl_default()};
  const Library& lib = nl.library();
  auto pin = [&](CellId c, const char* p) { return nl.cell_type(c).find_pin(p); };
  const CellId g = nl.add_cell("g", lib.find("BUF1"));
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  (void)nl.add_pad_input("A", a, 100, 220);
  (void)nl.connect(a, g, pin(g, "I0"));
  (void)nl.connect(y, g, pin(g, "O"));
  (void)nl.add_pad_output("Y", y, 0.05);
  nl.validate();
  Placement pl(1, 12);
  pl.place(nl, g, RowId{0}, 4);
  const CellId fd = nl.add_cell("fd", lib.find("FEED"));
  pl.place(nl, fd, RowId{0}, 8);
  for (const TerminalId t : nl.terminals()) {
    const Terminal& term = nl.terminal(t);
    if (term.kind == TerminalKind::kCellPin) continue;
    pl.place_pad(t, term.kind == TerminalKind::kPadIn, IntInterval{0, 11});
  }
  GlobalRouter router(nl, std::move(pl), TechParams{}, {}, RouterOptions{});
  const RouteOutcome outcome = router.run();
  // Pads may land directly over the pins, so the physical trunk length can
  // legitimately be zero; the estimate still carries the tap allowances.
  EXPECT_GE(outcome.total_length_um, 0.0);
  for (const NetId n : nl.nets()) {
    EXPECT_TRUE(router.net_graph(n).is_tree());
    EXPECT_GT(router.net_graph(n).estimated_length_um(), 0.0);
  }
  EXPECT_GT(outcome.critical_delay_ps, 0.0);
}

TEST(RouterEdge, ConstraintOnMultiSourceMultiSink) {
  // A constraint with several sources and sinks (the paper defines S_P and
  // T_P as sets).
  const Dataset base = generate_circuit(testutil::small_spec(207));
  DelayGraph dg(base.netlist);
  PathConstraint wide;
  wide.name = "ALL";
  for (const auto v : dg.sources()) wide.sources.push_back(dg.terminal_of(v));
  for (const auto v : dg.sinks()) wide.sinks.push_back(dg.terminal_of(v));
  wide.limit_ps = 1e7;  // generous: structure test, not tension test
  Dataset ds = base;
  ds.constraints.push_back(wide);
  const RunResult r = run_flow(ds, true);
  EXPECT_GT(r.delay_ps, 0.0);
  EXPECT_EQ(r.violated_constraints, 0);
}

TEST(RouterEdge, HarderFeedEveryStressesInsertion) {
  CircuitSpec spec = testutil::small_spec(208);
  spec.feed_every = 50;     // almost no pre-placed feed cells
  spec.gap_fraction = 0.0;  // and no gaps
  const Dataset ds = generate_circuit(spec);
  const RunResult r = run_flow(ds, true);
  EXPECT_GT(r.feed_cells_added, 0);
  EXPECT_GT(r.widen_pitches, 0);
  EXPECT_GT(r.delay_ps, 0.0);
}

TEST(RouterEdge, BackAnnotationRefinementImprovesMargins) {
  const Dataset ds = generate_circuit(testutil::small_spec(209));
  const RunResult base = run_flow(ds, true);
  const RunResult refined = run_flow(ds, true, RouterOptions{}, 1);
  EXPECT_GT(refined.delay_ps, 0.0);
  // Refinement must not lose constraints that were already met, and the
  // refined run reports more phases (the refine_* trio).
  EXPECT_LE(refined.violated_constraints, base.violated_constraints);
  EXPECT_EQ(refined.phases.size(), base.phases.size() + 3);
}

TEST(RouterEdge, EcoRerouteKeepsDesignLegal) {
  const Dataset ds = generate_circuit(testutil::small_spec(211));
  Netlist nl = ds.netlist;
  GlobalRouter router(nl, ds.placement, ds.tech, ds.constraints,
                      RouterOptions{});
  (void)router.run();
  // Rip up and re-route a handful of nets, including a differential shadow
  // (which must be redirected to its primary) and a multi-pitch net.
  std::vector<NetId> targets;
  for (const NetId n : nl.nets()) {
    const Net& net = nl.net(n);
    if (net.is_differential() && !net.diff_primary) targets.push_back(n);
    if (net.pitch_width > 1) targets.push_back(n);
    if (targets.size() >= 4) break;
  }
  targets.push_back(NetId{0});
  const RouteOutcome outcome = router.reroute(targets);
  EXPECT_EQ(outcome.phases.size(), 1u);
  EXPECT_GT(outcome.phases[0].reroutes, 0);
  for (const NetId n : nl.nets()) {
    EXPECT_TRUE(router.net_graph(n).is_tree());
  }
  // ECO must leave the density bookkeeping exact.
  DensityMap fresh(router.placement().channel_count(),
                   router.placement().width());
  for (const NetId n : nl.nets()) {
    const RoutingGraph& g = router.net_graph(n);
    for (const auto e : g.alive_edges()) {
      const RouteEdgeInfo& info = g.edge_info(e);
      if (info.is_trunk()) {
        fresh.add_total(info.channel, info.span, nl.net(n).pitch_width);
      }
    }
  }
  for (std::int32_t c = 0; c < fresh.channel_count(); ++c) {
    for (std::int32_t x = 0; x < fresh.width(); ++x) {
      ASSERT_EQ(router.density().total_at(c, x), fresh.total_at(c, x));
    }
  }
}

TEST(RouterEdge, EcoRerouteRequiresCompletedRun) {
  const Dataset ds = generate_circuit(testutil::small_spec(212));
  Netlist nl = ds.netlist;
  GlobalRouter router(nl, ds.placement, ds.tech, ds.constraints,
                      RouterOptions{});
  EXPECT_THROW((void)router.reroute({NetId{0}}), CheckError);
}

TEST(RouterEdge, RefineRequiresCompletedRun) {
  const Dataset ds = generate_circuit(testutil::small_spec(210));
  Netlist nl = ds.netlist;
  GlobalRouter router(nl, ds.placement, ds.tech, ds.constraints,
                      RouterOptions{});
  const IdVector<NetId, double> extra(
      static_cast<std::size_t>(nl.net_count()), 0.0);
  EXPECT_THROW((void)router.refine(extra), CheckError);
}

}  // namespace
}  // namespace bgr

#include "bgr/route/routing_graph.hpp"

#include <gtest/gtest.h>

#include "bgr/common/rng.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

using testutil::ChainCircuit;

struct Fixture {
  ChainCircuit c;
  Placement pl;
  TechParams tech;
  FeedthroughAssignment assignment{0};

  Fixture() : pl(c.make_placement()), assignment(c.nl.net_count()) {
    assign_external_pins(c.nl, pl);
    const IdVector<NetId, double> order(
        static_cast<std::size_t>(c.nl.net_count()), 0.0);
    auto outcome = assign_feedthroughs(c.nl, pl, order, false);
    BGR_CHECK(outcome.complete());
    assignment = std::move(outcome.assignment);
  }

  RoutingGraph graph(NetId n) const {
    return RoutingGraph(c.nl, pl, tech, assignment, n);
  }
};

TEST(RoutingGraph, TerminalsConnected) {
  Fixture f;
  for (const NetId n : f.c.nl.nets()) {
    const RoutingGraph g = f.graph(n);
    EXPECT_TRUE(g.graph().connects(g.terminal_vertices()));
    EXPECT_GE(g.terminal_vertices().size(), 2u);
    EXPECT_GE(g.driver_vertex(), 0);
  }
}

TEST(RoutingGraph, EdgeInfosAlignWithGraph) {
  Fixture f;
  const RoutingGraph g = f.graph(f.c.n0);
  for (std::int32_t e = 0; e < g.graph().edge_count(); ++e) {
    const RouteEdgeInfo& info = g.edge_info(e);
    switch (info.kind) {
      case RouteEdgeKind::kTrunk:
        EXPECT_GT(info.span.length(), 1);
        EXPECT_GT(info.length_um, 0.0);
        break;
      case RouteEdgeKind::kTermLink:
        EXPECT_EQ(info.span.length(), 1);
        EXPECT_DOUBLE_EQ(info.length_um, 0.0);
        break;
      case RouteEdgeKind::kFeed:
        EXPECT_EQ(info.span.length(), 1);
        EXPECT_DOUBLE_EQ(info.length_um, f.tech.row_cross_um());
        break;
    }
  }
}

TEST(RoutingGraph, SameRowNetHasAlternatives) {
  Fixture f;
  // n0 joins two row-0 cells with both-sided pins: channels 0 and 1 give a
  // cycle, so non-bridge edges exist.
  const RoutingGraph g = f.graph(f.c.n0);
  EXPECT_FALSE(g.non_bridge_edges().empty());
  EXPECT_FALSE(g.is_tree());
}

TEST(RoutingGraph, DeletionKeepsTerminalsConnected) {
  Fixture f;
  RoutingGraph g = f.graph(f.c.n0);
  while (!g.is_tree()) {
    const auto candidates = g.non_bridge_edges();
    ASSERT_FALSE(candidates.empty());
    (void)g.delete_edge(candidates.front());
    EXPECT_TRUE(g.graph().connects(g.terminal_vertices()));
  }
  // A tree has no deletable edges left.
  EXPECT_TRUE(g.non_bridge_edges().empty());
}

TEST(RoutingGraph, DeleteBridgeRejected) {
  Fixture f;
  RoutingGraph g = f.graph(f.c.n0);
  while (!g.is_tree()) {
    (void)g.delete_edge(g.non_bridge_edges().front());
  }
  // Every remaining edge is a bridge now.
  for (const auto e : g.alive_edges()) {
    EXPECT_TRUE(g.is_bridge(e));
    EXPECT_THROW((void)g.delete_edge(e), CheckError);
  }
}

TEST(RoutingGraph, PruneRemovesDanglingBranches) {
  Fixture f;
  RoutingGraph g = f.graph(f.c.n0);
  while (!g.is_tree()) {
    (void)g.delete_edge(g.non_bridge_edges().front());
  }
  // After reduction every leaf vertex is a terminal.
  const SmallGraph& sg = g.graph();
  for (std::int32_t v = 0; v < sg.vertex_count(); ++v) {
    if (!sg.vertex_alive(v)) continue;
    if (sg.degree(v) == 1) {
      EXPECT_EQ(g.vertex_info(v).kind, RouteVertexKind::kTerminal);
    }
  }
}

TEST(RoutingGraph, TentativeLengthNeverBelowFinal) {
  Fixture f;
  RoutingGraph g = f.graph(f.c.a);
  const double initial = g.tentative_length_um();
  while (!g.is_tree()) {
    (void)g.delete_edge(g.non_bridge_edges().front());
  }
  // Deleting edges can only lengthen (or keep) the shortest-path tree.
  EXPECT_GE(g.tentative_length_um() + 1e-9, initial);
  // On a tree the tentative tree is the tree itself.
  EXPECT_NEAR(g.tentative_length_um(), g.alive_length_um(), 1e-9);
}

TEST(RoutingGraph, SkipEdgeEvaluatesHypothetically) {
  Fixture f;
  RoutingGraph g = f.graph(f.c.n0);
  const auto candidates = g.non_bridge_edges();
  ASSERT_FALSE(candidates.empty());
  const double before = g.tentative_length_um();
  const double with_skip = g.tentative_length_um(candidates.front());
  EXPECT_GE(with_skip + 1e-9, before);
  // The graph itself is unchanged.
  EXPECT_TRUE(g.graph().edge_alive(candidates.front()));
}

TEST(RoutingGraph, EstimatedLengthIncludesAllowances) {
  Fixture f;
  const RoutingGraph g = f.graph(f.c.n0);
  const double est = g.estimated_length_um();
  const double phys = g.tentative_length_um();
  // Two terminals → at least 2 × channel-depth allowance.
  EXPECT_GE(est, phys + 2.0 * f.tech.channel_depth_est_um - 1e-9);
}

TEST(RoutingGraph, PadNetUsesAssignedCrossings) {
  Fixture f;
  const RoutingGraph g = f.graph(f.c.a);
  // Net a requires crossing row 1 (pad on top, sink on row 0): at least
  // one feed edge must exist.
  bool has_feed = false;
  for (const auto e : g.alive_edges()) {
    has_feed = has_feed || g.edge_info(e).kind == RouteEdgeKind::kFeed;
  }
  EXPECT_TRUE(has_feed);
}

TEST(RoutingGraph, DifferentialShadowMirrors) {
  // Build a small differential design and check mirrored construction.
  Netlist nl{Library::make_ecl_default()};
  const CellTypeId ddrv = nl.library().find("DDRV");
  const CellTypeId drcv = nl.library().find("DRCV");
  const CellId drv = nl.add_cell("drv", ddrv);
  const CellId rcv = nl.add_cell("rcv", drcv);
  const NetId nt = nl.add_net("nt");
  const NetId nc = nl.add_net("nc");
  auto pin = [&](CellId c, const char* p) { return nl.cell_type(c).find_pin(p); };
  (void)nl.connect(nt, drv, pin(drv, "OT"));
  (void)nl.connect(nc, drv, pin(drv, "OC"));
  (void)nl.connect(nt, rcv, pin(rcv, "IT"));
  (void)nl.connect(nc, rcv, pin(rcv, "IC"));
  nl.make_differential(nt, nc);
  Placement pl(3, 14);
  pl.place(nl, drv, RowId{0}, 0);
  pl.place(nl, rcv, RowId{2}, 6);
  IdVector<NetId, double> order(2, 0.0);
  auto outcome = assign_feedthroughs(nl, pl, order, false);
  ASSERT_TRUE(outcome.complete());
  TechParams tech;
  const RoutingGraph primary(nl, pl, tech, outcome.assignment, nt);
  const RoutingGraph shadow(nl, pl, tech, outcome.assignment, nc, nt, 1);
  ASSERT_EQ(primary.graph().edge_count(), shadow.graph().edge_count());
  for (std::int32_t e = 0; e < primary.graph().edge_count(); ++e) {
    EXPECT_EQ(primary.edge_info(e).kind, shadow.edge_info(e).kind);
    EXPECT_EQ(primary.edge_info(e).channel, shadow.edge_info(e).channel);
    // Shadow spans sit exactly one column to the right.
    EXPECT_EQ(primary.edge_info(e).span.lo + 1, shadow.edge_info(e).span.lo);
    EXPECT_EQ(primary.edge_info(e).span.hi + 1, shadow.edge_info(e).span.hi);
  }
}

}  // namespace
}  // namespace bgr

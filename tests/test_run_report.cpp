// Schema tests of the --metrics-out run report: the document produced by
// make_run_report() must carry the versioned layout the external checker
// (tools/check_run_report.py) and the bench trajectory rely on, and its
// metrics section must list every metric registered in the process.
#include <gtest/gtest.h>

#include <sstream>

#include "bgr/metrics/report.hpp"
#include "bgr/obs/run_report.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

struct ReportFixture {
  Dataset ds = generate_circuit(testutil::small_spec(402));
  Netlist nl = ds.netlist;
  GlobalRouter router{nl, ds.placement, ds.tech, ds.constraints,
                      RouterOptions{}};
  RouteOutcome outcome = router.run();
  ChannelStage channel{router};
  RunReport report = [this] {
    channel.run();
    RunReportInfo info;
    info.design = ds.name;
    info.detailed_delay_ps = 123.0;
    info.wall_seconds = 0.5;
    return make_run_report(router, channel, outcome, info);
  }();
};

TEST(RunReport, CarriesSchemaVersionAndSections) {
  ReportFixture f;
  const JsonValue& root = f.report.root();
  EXPECT_EQ(root.at("schema_version").as_int(), kRunReportSchemaVersion);
  EXPECT_EQ(root.at("kind").as_string(), "bgr_route");
  for (const char* section :
       {"design", "options", "result", "stats", "phases", "run", "metrics"}) {
    EXPECT_NE(root.find(section), nullptr) << section;
  }
  EXPECT_EQ(root.at("design").at("name").as_string(), f.ds.name);
  EXPECT_EQ(root.at("result").at("detailed_delay_ps").as_double(), 123.0);
}

TEST(RunReport, ContainsEveryRegisteredMetric) {
  ReportFixture f;
  const JsonValue& metrics = f.report.root().at("metrics");
  const JsonValue& semantic = metrics.at("semantic");
  const JsonValue& nondet = metrics.at("nondeterministic");
  const auto names = MetricsRegistry::global().names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    const bool found =
        semantic.find(name) != nullptr || nondet.find(name) != nullptr;
    EXPECT_TRUE(found) << "metric missing from report: " << name;
  }
  EXPECT_EQ(semantic.members().size() + nondet.members().size(), names.size());
}

TEST(RunReport, RoutingPopulatedTheCoreCounters) {
  ReportFixture f;
  const JsonValue& semantic = f.report.root().at("metrics").at("semantic");
  for (const char* name :
       {"route.deleted_edges", "route.graphs_built", "path.searches",
        "path.pops", "path.relaxations", "sta.full_sweeps",
        "channel.segments"}) {
    const JsonValue* v = semantic.find(name);
    ASSERT_NE(v, nullptr) << name;
    EXPECT_GT(v->as_int(), 0) << name;
  }
  const JsonValue* hist = semantic.find("route.graph_edges");
  ASSERT_NE(hist, nullptr);
  EXPECT_GT(hist->at("count").as_int(), 0);
}

TEST(RunReport, PhaseEntriesIsolateWallClockUnderWall) {
  ReportFixture f;
  const JsonValue& phases = f.report.root().at("phases");
  ASSERT_TRUE(phases.is_array());
  ASSERT_GT(phases.size(), 0u);
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const JsonValue& ph = phases.at(i);
    EXPECT_NE(ph.find("name"), nullptr);
    const JsonValue* wall = ph.find("wall");
    ASSERT_NE(wall, nullptr);
    EXPECT_NE(wall->find("seconds"), nullptr);
    EXPECT_NE(wall->find("exec_regions"), nullptr);
    // Wall-clock never leaks outside the strippable sub-object.
    EXPECT_EQ(ph.find("seconds"), nullptr);
  }
}

TEST(RunReport, SerializesToParseableJson) {
  ReportFixture f;
  std::ostringstream os;
  f.report.write(os);
  const JsonValue back = json_parse(os.str());
  EXPECT_EQ(back.at("schema_version").as_int(), kRunReportSchemaVersion);
  EXPECT_EQ(back.at("metrics").at("semantic").members().size(),
            f.report.root().at("metrics").at("semantic").members().size());
}

}  // namespace
}  // namespace bgr

// Wire-protocol and scheduler tests: strict request parsing that never
// throws, single-line response framing, admission control (bounded queue,
// duplicate ids, shutdown), round-robin fairness across clients, and
// queued-job cancellation.
#include <gtest/gtest.h>

#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "bgr/fuzz/spec_sampler.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/io/design_io.hpp"
#include "bgr/serve/design_cache.hpp"
#include "bgr/serve/scheduler.hpp"

namespace bgr {
namespace {

using serve::Admission;
using serve::CancelOutcome;
using serve::ControlRequest;
using serve::DesignCache;
using serve::JobRequest;
using serve::JobScheduler;
using serve::ParsedRequest;
using serve::SchedulerConfig;
using serve::parse_request_line;

// ---------------------------------------------------------------- parser

TEST(ServeProtocol, ParsesJobWithOptions) {
  const ParsedRequest parsed = parse_request_line(
      "{\"id\":\"j1\",\"dataset\":\"C1P1\",\"options\":{\"rc\":true,"
      "\"sequential\":true,\"improvement_passes\":3,"
      "\"path_search\":\"dijkstra\",\"incremental_sta\":false,"
      "\"unconstrained\":true},\"verify\":true,\"route_text\":true,"
      "\"report\":true}");
  ASSERT_EQ(parsed.kind, ParsedRequest::Kind::kJob) << parsed.error;
  EXPECT_EQ(parsed.job.id, "j1");
  EXPECT_EQ(parsed.job.preset, "C1P1");
  EXPECT_EQ(parsed.job.options.delay_model, DelayModel::kElmoreRC);
  EXPECT_FALSE(parsed.job.options.concurrent_initial);
  EXPECT_EQ(parsed.job.options.improvement_passes, 3);
  EXPECT_EQ(parsed.job.options.path_search, PathSearchBackend::kDijkstra);
  EXPECT_FALSE(parsed.job.options.incremental_sta);
  EXPECT_FALSE(parsed.job.constrained);
  EXPECT_TRUE(parsed.job.verify);
  EXPECT_TRUE(parsed.job.want_route_text);
  EXPECT_TRUE(parsed.job.want_report);
}

TEST(ServeProtocol, ParsesControlRequests) {
  const ParsedRequest ping = parse_request_line("{\"ping\":true}");
  ASSERT_EQ(ping.kind, ParsedRequest::Kind::kControl);
  EXPECT_EQ(ping.control.kind, ControlRequest::Kind::kPing);

  const ParsedRequest cancel = parse_request_line("{\"cancel\":\"j7\"}");
  ASSERT_EQ(cancel.kind, ParsedRequest::Kind::kControl);
  EXPECT_EQ(cancel.control.kind, ControlRequest::Kind::kCancel);
  EXPECT_EQ(cancel.control.target, "j7");

  const ParsedRequest shutdown = parse_request_line("{\"shutdown\":true}");
  ASSERT_EQ(shutdown.kind, ParsedRequest::Kind::kControl);
  EXPECT_EQ(shutdown.control.kind, ControlRequest::Kind::kShutdown);
}

TEST(ServeProtocol, RejectsMalformedRequestsWithoutThrowing) {
  const char* cases[] = {
      "",                                     // empty
      "not json at all",                      // not JSON
      "[1,2,3]",                              // not an object
      "{\"id\":\"j\"}",                       // no design source
      "{\"dataset\":\"C1P1\"}",               // no id
      "{\"id\":\"\",\"dataset\":\"C1P1\"}",   // empty id
      "{\"id\":\"j\",\"dataset\":\"C1P1\",\"design\":\"x\"}",  // two sources
      "{\"id\":\"j\",\"dataset\":\"C1P1\",\"bogus\":1}",   // unknown key
      "{\"id\":\"j\",\"dataset\":\"C1P1\","
      "\"options\":{\"bogus\":true}}",        // unknown option
      "{\"id\":\"j\",\"dataset\":\"C1P1\","
      "\"options\":{\"improvement_passes\":-1}}",  // out-of-range option
      "{\"id\":\"j\",\"dataset\":\"C1P1\","
      "\"options\":{\"path_search\":\"bfs\"}}",    // bad enum
      "{\"cancel\":\"j\",\"ping\":true}",     // control with extra field
      "{\"id\":\"j\",\"dataset\":\"C1P1\"",   // truncated JSON
      "{\"id\":17,\"dataset\":\"C1P1\"}",     // wrong type
  };
  for (const char* line : cases) {
    const ParsedRequest parsed = parse_request_line(line);
    EXPECT_EQ(parsed.kind, ParsedRequest::Kind::kError) << line;
    EXPECT_FALSE(parsed.error.empty()) << line;
  }
}

TEST(ServeProtocol, ResponsesSerializeToOneLine) {
  JsonValue event = serve::make_event("rejected", "j1");
  event.set("reason", "diagnostic with\nnewline and \"quotes\"");
  const std::string line = serve::response_line(event);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const JsonValue back = json_parse(line);
  EXPECT_EQ(back.at("event").as_string(), "rejected");
  EXPECT_EQ(back.at("id").as_string(), "j1");
}

// ------------------------------------------------------------- scheduler

/// Thread-safe event log shared with scheduler runner threads.
struct EventLog {
  std::mutex mutex;
  std::vector<std::pair<std::string, JsonValue>> events;

  JobScheduler::Emit emitter() {
    return [this](const std::string& client, const JsonValue& event) {
      std::lock_guard<std::mutex> lock(mutex);
      events.emplace_back(client, event);
    };
  }
  /// (client, id) of every event named `name`, in emission order.
  std::vector<std::pair<std::string, std::string>> of(
      const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& [client, event] : events) {
      if (event.at("event").as_string() == name) {
        out.emplace_back(client, event.at("id").as_string());
      }
    }
    return out;
  }
};

JobRequest tiny_job(const std::string& id) {
  static const std::string text = [] {
    CircuitSpec spec = sample_spec(0);
    spec.rows = 3;
    spec.target_cells = 24;
    spec.levels = 3;
    spec.path_constraints = 2;
    const Dataset ds = generate_circuit(spec);
    std::ostringstream os;
    write_design(os, ds);
    return os.str();
  }();
  JobRequest request;
  request.id = id;
  request.design_text = text;
  return request;
}

TEST(JobScheduler, AdmissionRejectsBeyondQueueCapacity) {
  EventLog log;
  DesignCache cache;
  SchedulerConfig config;
  config.max_jobs = 1;
  config.queue_capacity = 2;
  config.start_paused = true;  // nothing drains; the queue must fill
  JobScheduler scheduler(config, &cache, log.emitter());

  EXPECT_TRUE(scheduler.submit("c", tiny_job("a")).accepted);
  EXPECT_TRUE(scheduler.submit("c", tiny_job("b")).accepted);
  const Admission third = scheduler.submit("c", tiny_job("c"));
  EXPECT_FALSE(third.accepted);
  EXPECT_EQ(third.reason, "queue_full");

  scheduler.resume();
  scheduler.drain_and_stop();
  const JobScheduler::Totals totals = scheduler.totals();
  EXPECT_EQ(totals.accepted, 2);
  EXPECT_EQ(totals.rejected, 1);
  EXPECT_EQ(totals.completed, 2);
}

TEST(JobScheduler, AdmissionRejectsDuplicateIds) {
  EventLog log;
  DesignCache cache;
  SchedulerConfig config;
  config.start_paused = true;
  JobScheduler scheduler(config, &cache, log.emitter());

  EXPECT_TRUE(scheduler.submit("c", tiny_job("a")).accepted);
  const Admission dup = scheduler.submit("c", tiny_job("a"));
  EXPECT_FALSE(dup.accepted);
  EXPECT_EQ(dup.reason, "duplicate_id");
  // The same id from a different client is a different job.
  EXPECT_TRUE(scheduler.submit("other", tiny_job("a")).accepted);

  scheduler.resume();
  scheduler.drain_and_stop();
}

TEST(JobScheduler, RoundRobinInterleavesClients) {
  EventLog log;
  DesignCache cache;
  SchedulerConfig config;
  config.max_jobs = 1;  // single runner makes the serve order observable
  config.start_paused = true;
  JobScheduler scheduler(config, &cache, log.emitter());

  // Client A floods three jobs before B submits one; fairness requires B
  // to be served after A's first job, not after A's backlog.
  EXPECT_TRUE(scheduler.submit("a", tiny_job("a1")).accepted);
  EXPECT_TRUE(scheduler.submit("a", tiny_job("a2")).accepted);
  EXPECT_TRUE(scheduler.submit("a", tiny_job("a3")).accepted);
  EXPECT_TRUE(scheduler.submit("b", tiny_job("b1")).accepted);
  scheduler.resume();
  scheduler.drain_and_stop();

  const auto started = log.of("started");
  ASSERT_EQ(started.size(), 4u);
  EXPECT_EQ(started[0].second, "a1");
  EXPECT_EQ(started[1].second, "b1");  // b preempts a's backlog
  EXPECT_EQ(started[2].second, "a2");
  EXPECT_EQ(started[3].second, "a3");
}

TEST(JobScheduler, CancelsQueuedJobWithoutRunningIt) {
  EventLog log;
  DesignCache cache;
  SchedulerConfig config;
  config.max_jobs = 1;
  config.start_paused = true;
  JobScheduler scheduler(config, &cache, log.emitter());

  EXPECT_TRUE(scheduler.submit("c", tiny_job("a")).accepted);
  EXPECT_TRUE(scheduler.submit("c", tiny_job("b")).accepted);
  EXPECT_EQ(scheduler.cancel("c", "b"), CancelOutcome::kCancelledQueued);
  EXPECT_EQ(scheduler.cancel("c", "nope"), CancelOutcome::kUnknown);

  scheduler.resume();
  scheduler.drain_and_stop();
  const auto started = log.of("started");
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].second, "a");
  const auto cancelled = log.of("cancelled");
  ASSERT_EQ(cancelled.size(), 1u);
  EXPECT_EQ(cancelled[0].second, "b");
  EXPECT_EQ(scheduler.totals().cancelled, 1);
  EXPECT_EQ(scheduler.totals().completed, 1);
}

TEST(JobScheduler, EveryAcceptedJobGetsExactlyOneTerminalEvent) {
  EventLog log;
  DesignCache cache;
  SchedulerConfig config;
  config.max_jobs = 2;
  config.pool_workers = 2;
  JobScheduler scheduler(config, &cache, log.emitter());

  const int kJobs = 6;
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_TRUE(
        scheduler.submit("c", tiny_job("j" + std::to_string(i))).accepted);
  }
  scheduler.drain_and_stop();

  EXPECT_EQ(log.of("started").size(), static_cast<std::size_t>(kJobs));
  EXPECT_EQ(log.of("done").size(), static_cast<std::size_t>(kJobs));
  EXPECT_EQ(scheduler.totals().completed, kJobs);
  // Repeat submissions of one design hit the warm cache: first job
  // parses, the rest reuse (result- or dataset-level depending on
  // timing; the total is schedule-independent).
  const DesignCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.dataset_hits + stats.result_hits, kJobs - 1);
  EXPECT_EQ(stats.dataset_misses, 1);
}

}  // namespace
}  // namespace bgr

// Serve-core tests: the re-entrant RoutingSession pipeline, co-tenancy
// bit-identity on one shared ThreadPool (the N-jobs extension of the
// 1-vs-N-thread determinism guarantee), cooperative cancellation, and the
// single-shot contract on GlobalRouter::run() underneath it.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bgr/exec/thread_pool.hpp"
#include "bgr/fuzz/spec_sampler.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/io/design_io.hpp"
#include "bgr/route/lookahead.hpp"
#include "bgr/serve/design_cache.hpp"
#include "bgr/serve/session.hpp"

namespace bgr {
namespace {

using serve::DesignCache;
using serve::JobRequest;
using serve::request_result_key;
using serve::RoutingSession;
using serve::SessionResult;
using serve::SessionStatus;

/// Small-but-real design text (a few hundred graph edges): big enough to
/// exercise every pipeline phase and the parallel regions, small enough
/// to route many times in a test.
std::string small_design_text(std::uint64_t seed) {
  CircuitSpec spec = sample_spec(0);
  spec.seed = seed;
  spec.name = "serve_t" + std::to_string(seed);
  spec.rows = 4;
  spec.target_cells = 60;
  spec.levels = 4;
  spec.path_constraints = 6;
  const Dataset ds = generate_circuit(spec);
  std::ostringstream os;
  write_design(os, ds);
  return os.str();
}

JobRequest small_request(const std::string& id, std::uint64_t seed) {
  JobRequest request;
  request.id = id;
  request.design_text = small_design_text(seed);
  return request;
}

SessionResult run_solo(const JobRequest& request) {
  RoutingSession session(request, nullptr, nullptr);
  return session.run();
}

TEST(RoutingSession, RunsPipelineEndToEnd) {
  const SessionResult result = run_solo(small_request("j", 1));
  ASSERT_EQ(result.status, SessionStatus::kDone);
  EXPECT_GT(result.outcome.critical_delay_ps, 0.0);
  EXPECT_GT(result.detailed_delay_ps, 0.0);
  EXPECT_GT(result.area_mm2, 0.0);
  EXPECT_GT(result.total_length_um, 0.0);
  EXPECT_EQ(result.digest.size(), 16u);
  EXPECT_EQ(result.cache, "miss");
}

TEST(RoutingSession, RunIsReentrant) {
  const JobRequest request = small_request("j", 2);
  RoutingSession session(request, nullptr, nullptr);
  const SessionResult first = session.run();
  const SessionResult second = session.run();
  ASSERT_EQ(first.status, SessionStatus::kDone);
  ASSERT_EQ(second.status, SessionStatus::kDone);
  EXPECT_EQ(first.digest, second.digest);
}

TEST(RoutingSession, FailureComesBackAsStatusNotThrow) {
  JobRequest request;
  request.id = "bad";
  request.design_text = "this is not a design file";
  RoutingSession session(request, nullptr, nullptr);
  const SessionResult result = session.run();
  EXPECT_EQ(result.status, SessionStatus::kFailed);
  EXPECT_FALSE(result.error.empty());
}

TEST(RoutingSession, VerifyCountsAreReported) {
  JobRequest request = small_request("j", 3);
  request.verify = true;
  const SessionResult result = run_solo(request);
  ASSERT_EQ(result.status, SessionStatus::kDone);
  EXPECT_EQ(result.verify_errors, 0);
  EXPECT_GE(result.verify_warnings, 0);
}

/// The acceptance gate of DESIGN.md §12: a job's outcome is bit-identical
/// whether it runs alone (serial, private) or co-tenant with N-1 other
/// jobs on one shared worker pool. Digests are FNV folds of every
/// semantic field plus the routed-result text, so equal digests mean
/// bit-identical outcomes.
void check_cotenant_bit_identity(int n_jobs) {
  // Two distinct designs alternating, so co-tenants do genuinely
  // different work (and the cache, when present, sees repeats).
  std::vector<JobRequest> requests;
  std::vector<std::string> solo_digests;
  requests.reserve(static_cast<std::size_t>(n_jobs));
  for (int i = 0; i < n_jobs; ++i) {
    requests.push_back(
        small_request("j" + std::to_string(i),
                      static_cast<std::uint64_t>(10 + i % 2)));
  }
  for (const JobRequest& request : requests) {
    const SessionResult solo = run_solo(request);
    ASSERT_EQ(solo.status, SessionStatus::kDone);
    solo_digests.push_back(solo.digest);
  }

  ThreadPool pool(3);
  std::vector<std::unique_ptr<RoutingSession>> sessions;
  for (const JobRequest& request : requests) {
    sessions.push_back(
        std::make_unique<RoutingSession>(request, nullptr, &pool));
  }
  std::vector<SessionResult> results(static_cast<std::size_t>(n_jobs));
  std::vector<std::thread> threads;
  for (int i = 0; i < n_jobs; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<std::size_t>(i)] =
          sessions[static_cast<std::size_t>(i)]->run();
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < n_jobs; ++i) {
    const SessionResult& result = results[static_cast<std::size_t>(i)];
    ASSERT_EQ(result.status, SessionStatus::kDone) << "job " << i;
    EXPECT_EQ(result.digest, solo_digests[static_cast<std::size_t>(i)])
        << "job " << i << " diverged from its solo run";
  }
}

TEST(RoutingSession, CoTenantBitIdentityTwoJobs) {
  check_cotenant_bit_identity(2);
}

TEST(RoutingSession, CoTenantBitIdentityEightJobs) {
  check_cotenant_bit_identity(8);
}

TEST(RoutingSession, CachedResubmissionIsBitIdentical) {
  DesignCache cache;
  const JobRequest request = small_request("j", 4);
  RoutingSession first(request, &cache, nullptr);
  const SessionResult a = first.run();
  ASSERT_EQ(a.status, SessionStatus::kDone);
  EXPECT_EQ(a.cache, "miss");

  JobRequest repeat = request;
  repeat.id = "j-again";  // id is not part of the result key
  RoutingSession second(repeat, &cache, nullptr);
  const SessionResult b = second.run();
  ASSERT_EQ(b.status, SessionStatus::kDone);
  EXPECT_EQ(b.cache, "result-hit");
  EXPECT_EQ(b.digest, a.digest);

  // Different options must not hit the result level — but still reuse
  // the parsed design.
  JobRequest changed = request;
  changed.options.improvement_passes = 5;
  RoutingSession third(changed, &cache, nullptr);
  const SessionResult c = third.run();
  ASSERT_EQ(c.status, SessionStatus::kDone);
  EXPECT_EQ(c.cache, "design-hit");
}

TEST(RoutingSession, CancelBeforeRunShortCircuits) {
  const JobRequest request = small_request("j", 5);
  RoutingSession session(request, nullptr, nullptr);
  session.cancel();
  const SessionResult cancelled = session.run();
  EXPECT_EQ(cancelled.status, SessionStatus::kCancelled);

  // Cancellation is sticky until reset(), then the session runs normally.
  const SessionResult still = session.run();
  EXPECT_EQ(still.status, SessionStatus::kCancelled);
  session.reset();
  const SessionResult done = session.run();
  EXPECT_EQ(done.status, SessionStatus::kDone);
}

TEST(RoutingSession, MidRunCancelStopsAtPhaseBoundary) {
  JobRequest request = small_request("j", 6);
  RoutingSession* handle = nullptr;
  // First deletion of the initial-routing loop requests cancellation
  // (from "another thread"'s point of view: the flag is atomic); the
  // pipeline must stop at the next phase boundary, not finish.
  request.options.deletion_observer = [&handle](NetId, std::int32_t) {
    if (handle != nullptr) handle->cancel();
  };
  RoutingSession session(request, nullptr, nullptr);
  handle = &session;
  const SessionResult result = session.run();
  EXPECT_EQ(result.status, SessionStatus::kCancelled);
}

TEST(RoutingSession, SharedPoolStaysHealthyAfterCancel) {
  ThreadPool pool(3);
  JobRequest doomed = small_request("a", 7);
  RoutingSession* handle = nullptr;
  doomed.options.deletion_observer = [&handle](NetId, std::int32_t) {
    if (handle != nullptr) handle->cancel();
  };
  RoutingSession cancelled(doomed, nullptr, &pool);
  handle = &cancelled;
  EXPECT_EQ(cancelled.run().status, SessionStatus::kCancelled);

  // The pool must be fully usable afterwards, and results on it must
  // still match the solo run.
  const JobRequest request = small_request("b", 8);
  const SessionResult solo = run_solo(request);
  RoutingSession after(request, nullptr, &pool);
  const SessionResult result = after.run();
  ASSERT_EQ(result.status, SessionStatus::kDone);
  EXPECT_EQ(result.digest, solo.digest);
}

TEST(RequestResultKey, SeparatesOptionsAndDesigns) {
  const JobRequest a = small_request("j", 9);
  JobRequest b = a;
  b.options.improvement_passes = 5;
  JobRequest c = a;
  c.constrained = false;
  JobRequest d = a;
  d.options.lookahead = LookaheadMode::kMap;
  const std::uint64_t design_key = DesignCache::text_key(a.design_text);
  const std::uint64_t other_key = DesignCache::text_key("something else");
  EXPECT_NE(request_result_key(a, design_key),
            request_result_key(b, design_key));
  EXPECT_NE(request_result_key(a, design_key),
            request_result_key(c, design_key));
  EXPECT_NE(request_result_key(a, design_key),
            request_result_key(d, design_key));
  EXPECT_NE(request_result_key(a, design_key),
            request_result_key(a, other_key));
  EXPECT_EQ(request_result_key(a, design_key),
            request_result_key(a, design_key));
}

TEST(RoutingSession, SteinerEngineGetsItsOwnResultCacheEntry) {
  // Two jobs differing only in `--path-search steiner` vs `astar` must
  // land in distinct result-cache slots (the key mixes the engine) and
  // produce distinct digests — the steiner backend is *allowed* to route
  // differently, so serving it an astar result would be a wrong answer.
  DesignCache cache;
  const JobRequest astar = small_request("a", 12);
  JobRequest steiner = astar;
  steiner.options.path_search = PathSearchBackend::kSteiner;

  const std::uint64_t design_key = DesignCache::text_key(astar.design_text);
  EXPECT_NE(request_result_key(astar, design_key),
            request_result_key(steiner, design_key));

  RoutingSession first(astar, &cache, nullptr);
  const SessionResult a = first.run();
  ASSERT_EQ(a.status, SessionStatus::kDone);
  EXPECT_EQ(a.cache, "miss");

  // Same design text: the parsed dataset is reused, the result is not.
  RoutingSession second(steiner, &cache, nullptr);
  const SessionResult s = second.run();
  ASSERT_EQ(s.status, SessionStatus::kDone);
  EXPECT_EQ(s.cache, "design-hit");
  EXPECT_NE(s.digest, a.digest);

  // Resubmitting the steiner job hits its own (steiner-built) entry.
  RoutingSession repeat(steiner, &cache, nullptr);
  const SessionResult again = repeat.run();
  ASSERT_EQ(again.status, SessionStatus::kDone);
  EXPECT_EQ(again.cache, "result-hit");
  EXPECT_EQ(again.digest, s.digest);
}

TEST(RoutingSession, MapLookaheadMatchesExactThroughTheCache) {
  // `--lookahead map` through the serve path: different result key (no
  // false result-hit), shared parsed design, cached lookahead table — and
  // a bit-identical outcome, because both heuristics are admissible.
  DesignCache cache;
  JobRequest exact = small_request("e", 11);
  JobRequest map = exact;
  map.id = "m";
  map.options.lookahead = LookaheadMode::kMap;

  RoutingSession exact_session(exact, &cache, nullptr);
  const SessionResult a = exact_session.run();
  ASSERT_EQ(a.status, SessionStatus::kDone);

  RoutingSession map_session(map, &cache, nullptr);
  const SessionResult b = map_session.run();
  ASSERT_EQ(b.status, SessionStatus::kDone);
  EXPECT_EQ(b.cache, "design-hit");
  EXPECT_EQ(b.digest, a.digest);
}

TEST(DesignCache, UsageReturnsToBaselineAfterFullEviction) {
  // Regression: the byte gauge is maintained incrementally, so eviction
  // must release exactly what insertion charged — including the lazily
  // attached lookahead table — or usage() drifts away from reality.
  DesignCache cache(2, 2);
  const DesignCache::Usage empty = cache.usage();
  EXPECT_EQ(empty.dataset_entries, 0);
  EXPECT_EQ(empty.dataset_bytes, 0);
  EXPECT_EQ(empty.result_entries, 0);
  EXPECT_EQ(empty.result_bytes, 0);

  // Overfill both levels so the LRU evicts while we insert.
  for (std::uint64_t seed = 20; seed < 25; ++seed) {
    const std::string text = small_design_text(seed);
    const auto dataset = cache.dataset_for_text(text, "test");
    (void)cache.lookahead_for(DesignCache::text_key(text), *dataset);
    cache.store_result(seed, std::make_shared<const SessionResult>());
  }
  const DesignCache::Usage full = cache.usage();
  EXPECT_EQ(full.dataset_entries, 2);
  EXPECT_EQ(full.result_entries, 2);
  EXPECT_GT(full.dataset_bytes, 0);
  EXPECT_GT(full.result_bytes, 0);

  cache.clear();
  const DesignCache::Usage cleared = cache.usage();
  EXPECT_EQ(cleared.dataset_entries, 0);
  EXPECT_EQ(cleared.dataset_bytes, 0);
  EXPECT_EQ(cleared.result_entries, 0);
  EXPECT_EQ(cleared.result_bytes, 0);
}

TEST(DesignCache, LookaheadTableIsBuiltOncePerResidentDesign) {
  DesignCache cache;
  const std::string text = small_design_text(30);
  const std::uint64_t key = DesignCache::text_key(text);
  const auto dataset = cache.dataset_for_text(text, "test");

  const DesignCache::Usage before = cache.usage();
  const auto first = cache.lookahead_for(key, *dataset);
  const auto second = cache.lookahead_for(key, *dataset);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // built once, then shared
  const DesignCache::Usage after = cache.usage();
  EXPECT_GT(after.dataset_bytes, before.dataset_bytes);
  EXPECT_EQ(cache.usage().dataset_bytes, after.dataset_bytes);

  // A design that is not resident still gets a (private) table.
  const auto orphan =
      cache.lookahead_for(DesignCache::text_key("absent"), *dataset);
  ASSERT_NE(orphan, nullptr);
  EXPECT_NE(orphan.get(), first.get());
}

}  // namespace
}  // namespace bgr

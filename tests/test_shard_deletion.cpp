// Differential battery for the sharded §3.4 deletion loop (DESIGN.md §13).
// The contract under test: partitioning the candidate nets into
// interaction-disjoint shards, running each shard's greedy loop on its own
// worker and replaying the commits in merged canonical order must be
// *bit-identical* to the unsharded serial greedy — same RouteOutcome, same
// per-net routed lengths, same constraint margins, and the same committed
// deletion sequence — at every thread count, across a population of
// generated designs (blocked multi-shard designs, and single-component
// designs that exercise the fallback).
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bgr/gen/generator.hpp"
#include "bgr/route/router.hpp"
#include "bgr/route/shard.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

/// Small block-structured spec: a handful of closed cones so the deletion
/// loop decomposes into several shards while each route stays fast.
CircuitSpec shard_spec(std::uint64_t seed, std::int32_t blocks) {
  CircuitSpec spec;
  spec.name = "SH" + std::to_string(seed);
  spec.seed = seed;
  spec.blocks = blocks;
  spec.rows = 3;
  spec.target_cells = 100 * blocks;
  spec.levels = 5;
  spec.primary_inputs = 6;
  spec.primary_outputs = 6;
  spec.diff_pairs = blocks;
  spec.clock_buffers = 1;
  spec.path_constraints = 10;
  return spec;
}

struct Routed {
  RouteOutcome outcome;
  std::vector<double> net_lengths_um;
  std::vector<double> margins;
  /// Committed deletions (primary net index, edge id) in observer order.
  std::vector<std::pair<std::int32_t, std::int32_t>> deletions;
};

Routed route(Dataset design, bool shard, std::int32_t threads) {
  RouterOptions options;
  options.shard_deletion = shard;
  options.threads = threads;
  Routed r;
  options.deletion_observer = [&r](NetId n, std::int32_t e) {
    r.deletions.emplace_back(n.index(), e);
  };
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  r.outcome = router.run();
  for (const NetId n : design.netlist.nets()) {
    r.net_lengths_um.push_back(router.net_length_um(n));
  }
  for (const ConstraintId p : router.analyzer().constraints()) {
    r.margins.push_back(router.analyzer().margin_ps(p));
  }
  return r;
}

void expect_identical(const Routed& a, const Routed& b) {
  // EXPECT_EQ on doubles throughout: the contract is bit-identity.
  EXPECT_EQ(a.outcome.critical_delay_ps, b.outcome.critical_delay_ps);
  EXPECT_EQ(a.outcome.total_length_um, b.outcome.total_length_um);
  EXPECT_EQ(a.outcome.violated_constraints, b.outcome.violated_constraints);
  EXPECT_EQ(a.outcome.worst_margin_ps, b.outcome.worst_margin_ps);
  EXPECT_EQ(a.outcome.feed_cells_added, b.outcome.feed_cells_added);
  ASSERT_EQ(a.outcome.phases.size(), b.outcome.phases.size());
  for (std::size_t i = 0; i < a.outcome.phases.size(); ++i) {
    EXPECT_EQ(a.outcome.phases[i].deletions, b.outcome.phases[i].deletions)
        << a.outcome.phases[i].name;
    EXPECT_EQ(a.outcome.phases[i].reroutes, b.outcome.phases[i].reroutes)
        << a.outcome.phases[i].name;
  }
  EXPECT_EQ(a.net_lengths_um, b.net_lengths_um);
  EXPECT_EQ(a.margins, b.margins);
  EXPECT_EQ(a.deletions, b.deletions) << "deletion sequences diverge";
}

// The battery: ≥50 generated designs, each routed unsharded-serial (the
// reference) and sharded at threads {1, 2, 8}.
TEST(ShardDeletion, BatteryBitIdenticalToSerialReference) {
  std::vector<CircuitSpec> specs;
  // 38 blocked designs, 2–5 cones each.
  for (std::uint64_t seed = 100; seed < 138; ++seed) {
    specs.push_back(shard_spec(seed, 2 + static_cast<std::int32_t>(seed % 4)));
  }
  // 12 plain single-band designs: usually one interaction component, so
  // the sharded path must take its fallback and still match.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    specs.push_back(testutil::small_spec(seed));
  }
  ASSERT_GE(specs.size(), 50u);

  for (const CircuitSpec& spec : specs) {
    SCOPED_TRACE(spec.name);
    const Routed reference =
        route(generate_circuit(spec), /*shard=*/false, /*threads=*/1);
    for (const std::int32_t threads : {1, 2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      expect_identical(reference, route(generate_circuit(spec),
                                        /*shard=*/true, threads));
    }
  }
}

// Property: two nets in different shards share no channel and no
// constraint, and the shards partition the candidate nets.
TEST(ShardDeletion, CrossShardResourceDisjointness) {
  for (const std::uint64_t seed : {301u, 302u, 303u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Dataset design = generate_circuit(shard_spec(seed, 4));
    RouterOptions options;
    GlobalRouter router(design.netlist, std::move(design.placement),
                        design.tech, design.constraints, options);
    (void)router.run();
    const ShardDecomposition& dec = router.shard_decomposition();
    ASSERT_GT(dec.shard_count(), 1) << "design did not decompose";

    ASSERT_EQ(dec.shard_of.size(), dec.nets.size());
    std::vector<bool> seen(dec.nets.size(), false);
    std::set<std::pair<std::int32_t, std::int32_t>> channel_owner;
    std::set<std::pair<std::int32_t, std::int32_t>> constraint_owner;
    for (std::int32_t s = 0; s < dec.shard_count(); ++s) {
      EXPECT_FALSE(dec.shards[static_cast<std::size_t>(s)].empty());
      for (const std::int32_t i : dec.shards[static_cast<std::size_t>(s)]) {
        EXPECT_EQ(dec.shard_of[static_cast<std::size_t>(i)], s);
        EXPECT_FALSE(seen[static_cast<std::size_t>(i)]) << "net in 2 shards";
        seen[static_cast<std::size_t>(i)] = true;
        for (const std::int32_t c :
             dec.nets[static_cast<std::size_t>(i)].channels) {
          channel_owner.insert({c, s});
        }
        for (const std::int32_t p :
             dec.nets[static_cast<std::size_t>(i)].constraints) {
          constraint_owner.insert({p, s});
        }
      }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_TRUE(seen[i]) << "net index " << i << " unassigned";
    }
    // A resource owned by two shards would appear twice with distinct
    // shard ids: adjacent entries of the ordered set expose it.
    auto expect_unique_owner = [](
        const std::set<std::pair<std::int32_t, std::int32_t>>& owners,
        const char* what) {
      std::int32_t prev_resource = -1;
      for (const auto& [resource, shard] : owners) {
        EXPECT_NE(resource, prev_resource)
            << what << " " << resource << " shared across shards";
        prev_resource = resource;
      }
    };
    expect_unique_owner(channel_owner, "channel");
    expect_unique_owner(constraint_owner, "constraint");
  }
}

// Property: the decomposition — membership, shard order, and the
// deterministic work counters the scale bench gates on — is a pure
// function of the design, independent of the thread count.
TEST(ShardDeletion, DecompositionThreadCountInvariant) {
  const CircuitSpec spec = shard_spec(310, 5);
  struct Snapshot {
    std::vector<std::vector<std::int32_t>> shards;
    std::vector<std::int32_t> net_ids;
    std::vector<std::int64_t> commits;
    std::vector<std::int64_t> scans;
  };
  auto snapshot = [&](std::int32_t threads) {
    Dataset design = generate_circuit(spec);
    RouterOptions options;
    options.threads = threads;
    GlobalRouter router(design.netlist, std::move(design.placement),
                        design.tech, design.constraints, options);
    (void)router.run();
    const ShardDecomposition& dec = router.shard_decomposition();
    Snapshot s;
    s.shards = dec.shards;
    for (const ShardNetInfo& info : dec.nets) {
      s.net_ids.push_back(info.net.index());
    }
    s.commits = dec.commits;
    s.scans = dec.scans;
    return s;
  };
  const Snapshot one = snapshot(1);
  ASSERT_GT(one.shards.size(), 1u);
  for (const std::int32_t threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const Snapshot n = snapshot(threads);
    EXPECT_EQ(one.shards, n.shards);
    EXPECT_EQ(one.net_ids, n.net_ids);
    EXPECT_EQ(one.commits, n.commits);
    EXPECT_EQ(one.scans, n.scans);
  }
}

// The shard work counters account for every committed deletion of the
// initial phase (the only phase that shards).
TEST(ShardDeletion, CommitCountersMatchPhaseDeletions) {
  Dataset design = generate_circuit(shard_spec(320, 3));
  RouterOptions options;
  options.threads = 2;
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  const RouteOutcome outcome = router.run();
  const ShardDecomposition& dec = router.shard_decomposition();
  ASSERT_GT(dec.shard_count(), 1);
  std::int64_t commits = 0;
  std::int64_t scans = 0;
  for (std::int32_t s = 0; s < dec.shard_count(); ++s) {
    commits += dec.commits[static_cast<std::size_t>(s)];
    scans += dec.scans[static_cast<std::size_t>(s)];
  }
  ASSERT_FALSE(outcome.phases.empty());
  EXPECT_EQ(outcome.phases[0].name, "initial");
  EXPECT_EQ(commits, outcome.phases[0].deletions);
  EXPECT_GE(scans, commits);  // every commit was at least once scanned
}

}  // namespace
}  // namespace bgr

#include <gtest/gtest.h>

#include <sstream>

#include "bgr/channel/channel_router.hpp"
#include "bgr/io/route_io.hpp"
#include "bgr/metrics/experiment.hpp"
#include "bgr/metrics/skew.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

struct RoutedFixture {
  Dataset ds = generate_circuit(testutil::small_spec(71));
  Netlist nl = ds.netlist;
  GlobalRouter router{nl, ds.placement, ds.tech, ds.constraints,
                      RouterOptions{}};
  RouteOutcome outcome = router.run();
  ChannelStage channel{router};
  RoutedFixture() { channel.run(); }
};

TEST(ClockSkew, ReportsEveryMultiPitchNet) {
  RoutedFixture f;
  const auto report = clock_skew_report(f.router);
  std::int32_t expected = 0;
  for (const NetId n : f.nl.nets()) {
    if (f.nl.net(n).pitch_width > 1) ++expected;
  }
  EXPECT_EQ(static_cast<std::int32_t>(report.size()), expected);
  for (const ClockNetSkew& entry : report) {
    EXPECT_GT(entry.pitch_width, 1);
    EXPECT_GT(entry.fanout, 0);
    EXPECT_GE(entry.skew_ps(), 0.0);
    EXPECT_GE(entry.max_wire_ps, entry.min_wire_ps);
  }
}

TEST(ClockSkew, MultiPitchReducesSkew) {
  RoutedFixture f;
  for (const ClockNetSkew& entry : clock_skew_report(f.router)) {
    if (entry.fanout < 2) continue;
    // Same tree, lower resistance per unit: skew must not grow. (Cap grows
    // by w while resistance falls by w: the wire term scales down.)
    EXPECT_LE(entry.skew_ps(), entry.skew_1pitch_ps + 1e-9) << entry.name;
  }
}

TEST(RouteIo, DumpContainsEveryNetAndChannel) {
  RoutedFixture f;
  std::ostringstream oss;
  write_route(oss, f.router, f.channel);
  const std::string dump = oss.str();
  EXPECT_NE(dump.find("bgr-route 1"), std::string::npos);
  EXPECT_NE(dump.find("end"), std::string::npos);
  for (const NetId n : f.nl.nets()) {
    EXPECT_NE(dump.find("tree " + f.nl.net(n).name + " "), std::string::npos)
        << f.nl.net(n).name;
  }
  for (std::int32_t c = 0; c < f.channel.channel_count(); ++c) {
    EXPECT_NE(dump.find("channel " + std::to_string(c) + " tracks"),
              std::string::npos);
  }
}

TEST(RouteIo, TrackRecordsMatchPlans) {
  RoutedFixture f;
  std::ostringstream oss;
  write_route(oss, f.router, f.channel);
  // Count `track` records; must equal the total number of segments.
  std::size_t expected = 0;
  for (std::int32_t c = 0; c < f.channel.channel_count(); ++c) {
    expected += f.channel.plan(c).segments.size();
  }
  std::size_t count = 0;
  std::istringstream iss(oss.str());
  std::string line;
  while (std::getline(iss, line)) {
    if (line.rfind("track ", 0) == 0) ++count;
  }
  EXPECT_EQ(count, expected);
}

TEST(SequentialBaseline, RunsAndReducesAllNets) {
  const Dataset ds = generate_circuit(testutil::small_spec(72));
  Netlist nl = ds.netlist;
  RouterOptions options;
  options.concurrent_initial = false;
  GlobalRouter router(nl, ds.placement, ds.tech, ds.constraints, options);
  const RouteOutcome outcome = router.run();
  EXPECT_GT(outcome.total_length_um, 0.0);
  for (const NetId n : nl.nets()) {
    EXPECT_TRUE(router.net_graph(n).is_tree());
  }
  // Differential pairs stay mirrored in sequential mode too.
  for (const NetId n : nl.nets()) {
    const Net& net = nl.net(n);
    if (!net.is_differential() || !net.diff_primary) continue;
    const RoutingGraph& a = router.net_graph(n);
    const RoutingGraph& b = router.net_graph(net.diff_partner);
    for (std::int32_t e = 0; e < a.graph().edge_count(); ++e) {
      EXPECT_EQ(a.graph().edge_alive(e), b.graph().edge_alive(e));
    }
  }
}

}  // namespace
}  // namespace bgr

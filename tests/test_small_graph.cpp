#include "bgr/graph/small_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bgr/common/rng.hpp"

namespace bgr {
namespace {

/// Naive bridge oracle: an alive edge is a bridge iff removing it splits
/// the component containing its endpoints.
std::vector<bool> brute_force_bridges(const SmallGraph& g) {
  std::vector<bool> out(static_cast<std::size_t>(g.edge_count()), false);
  for (std::int32_t e = 0; e < g.edge_count(); ++e) {
    if (!g.edge_alive(e)) continue;
    const auto u = g.edge(e).u;
    const auto v = g.edge(e).v;
    // BFS avoiding edge e.
    std::vector<bool> seen(static_cast<std::size_t>(g.vertex_count()), false);
    std::vector<std::int32_t> stack{u};
    seen[static_cast<std::size_t>(u)] = true;
    while (!stack.empty()) {
      const auto w = stack.back();
      stack.pop_back();
      for (const auto ie : g.incident_edges(w)) {
        if (ie == e) continue;
        const auto n = g.other_end(ie, w);
        if (!seen[static_cast<std::size_t>(n)]) {
          seen[static_cast<std::size_t>(n)] = true;
          stack.push_back(n);
        }
      }
    }
    out[static_cast<std::size_t>(e)] = !seen[static_cast<std::size_t>(v)];
  }
  return out;
}

SmallGraph random_graph(Rng& rng, std::int32_t n, std::int32_t m) {
  SmallGraph g;
  for (std::int32_t i = 0; i < n; ++i) (void)g.add_vertex();
  for (std::int32_t i = 0; i < m; ++i) {
    const auto u = rng.uniform_i32(0, n - 1);
    auto v = rng.uniform_i32(0, n - 1);
    if (u == v) v = (v + 1) % n;
    (void)g.add_edge(u, v, rng.uniform_real(0.5, 10.0));
  }
  return g;
}

TEST(SmallGraph, AddAndRemoveEdge) {
  SmallGraph g;
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  const auto e = g.add_edge(a, b, 2.0);
  EXPECT_TRUE(g.edge_alive(e));
  EXPECT_EQ(g.degree(a), 1);
  g.remove_edge(e);
  EXPECT_FALSE(g.edge_alive(e));
  EXPECT_EQ(g.degree(a), 0);
  EXPECT_EQ(g.alive_edge_count(), 0);
}

TEST(SmallGraph, RemoveVertexRequiresNoEdges) {
  SmallGraph g;
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  const auto e = g.add_edge(a, b, 1.0);
  EXPECT_THROW(g.remove_vertex(a), CheckError);
  g.remove_edge(e);
  g.remove_vertex(a);
  EXPECT_FALSE(g.vertex_alive(a));
}

TEST(SmallGraph, SelfLoopRejected) {
  SmallGraph g;
  const auto a = g.add_vertex();
  EXPECT_THROW((void)g.add_edge(a, a, 1.0), CheckError);
}

TEST(SmallGraph, ConnectsDetectsComponents) {
  SmallGraph g;
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  const auto c = g.add_vertex();
  (void)g.add_edge(a, b, 1.0);
  EXPECT_TRUE(g.connects({a, b}));
  EXPECT_FALSE(g.connects({a, b, c}));
  (void)g.add_edge(b, c, 1.0);
  EXPECT_TRUE(g.connects({a, b, c}));
}

TEST(SmallGraph, BridgeInPath) {
  SmallGraph g;
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  const auto c = g.add_vertex();
  const auto e0 = g.add_edge(a, b, 1.0);
  const auto e1 = g.add_edge(b, c, 1.0);
  const auto bridges = g.bridges();
  EXPECT_TRUE(bridges[static_cast<std::size_t>(e0)]);
  EXPECT_TRUE(bridges[static_cast<std::size_t>(e1)]);
}

TEST(SmallGraph, CycleHasNoBridges) {
  SmallGraph g;
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  const auto c = g.add_vertex();
  (void)g.add_edge(a, b, 1.0);
  (void)g.add_edge(b, c, 1.0);
  (void)g.add_edge(c, a, 1.0);
  const auto bridges = g.bridges();
  for (std::int32_t e = 0; e < g.edge_count(); ++e) {
    EXPECT_FALSE(bridges[static_cast<std::size_t>(e)]);
  }
}

TEST(SmallGraph, ParallelEdgesAreNotBridges) {
  SmallGraph g;
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  (void)g.add_edge(a, b, 1.0);
  (void)g.add_edge(a, b, 2.0);
  const auto bridges = g.bridges();
  EXPECT_FALSE(bridges[0]);
  EXPECT_FALSE(bridges[1]);
}

TEST(SmallGraph, DijkstraSimplePath) {
  SmallGraph g;
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  const auto c = g.add_vertex();
  (void)g.add_edge(a, b, 1.0);
  const auto e1 = g.add_edge(b, c, 2.0);
  const auto e2 = g.add_edge(a, c, 10.0);
  auto sp = g.dijkstra(a);
  EXPECT_DOUBLE_EQ(sp.dist[static_cast<std::size_t>(c)], 3.0);
  EXPECT_EQ(sp.parent_edge[static_cast<std::size_t>(c)], e1);
  // Skipping e1 forces the direct edge.
  sp = g.dijkstra(a, e1);
  EXPECT_DOUBLE_EQ(sp.dist[static_cast<std::size_t>(c)], 10.0);
  EXPECT_EQ(sp.parent_edge[static_cast<std::size_t>(c)], e2);
}

class SmallGraphRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmallGraphRandom, BridgesMatchBruteForce) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    SmallGraph g = random_graph(rng, rng.uniform_i32(2, 14),
                                rng.uniform_i32(1, 24));
    // Random deletions to exercise the alive-subgraph handling.
    for (std::int32_t e = 0; e < g.edge_count(); ++e) {
      if (g.edge_alive(e) && rng.bernoulli(0.2)) g.remove_edge(e);
    }
    EXPECT_EQ(g.bridges(), brute_force_bridges(g));
  }
}

TEST_P(SmallGraphRandom, DijkstraMatchesBellmanFord) {
  Rng rng(GetParam() + 100);
  for (int round = 0; round < 10; ++round) {
    const auto n = rng.uniform_i32(2, 10);
    SmallGraph g = random_graph(rng, n, rng.uniform_i32(1, 20));
    const auto sp = g.dijkstra(0);
    // Bellman-Ford oracle.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(static_cast<std::size_t>(n), kInf);
    dist[0] = 0.0;
    for (std::int32_t i = 0; i < n; ++i) {
      for (std::int32_t e = 0; e < g.edge_count(); ++e) {
        if (!g.edge_alive(e)) continue;
        const auto& ed = g.edge(e);
        dist[static_cast<std::size_t>(ed.v)] =
            std::min(dist[static_cast<std::size_t>(ed.v)],
                     dist[static_cast<std::size_t>(ed.u)] + ed.weight);
        dist[static_cast<std::size_t>(ed.u)] =
            std::min(dist[static_cast<std::size_t>(ed.u)],
                     dist[static_cast<std::size_t>(ed.v)] + ed.weight);
      }
    }
    for (std::int32_t v = 0; v < n; ++v) {
      const double got = sp.dist[static_cast<std::size_t>(v)];
      const double want = dist[static_cast<std::size_t>(v)];
      if (std::isinf(want)) {
        EXPECT_TRUE(std::isinf(got));
      } else {
        EXPECT_NEAR(got, want, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallGraphRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(UnionFind, Basics) {
  UnionFind uf(5);
  EXPECT_FALSE(uf.same(0, 1));
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_FALSE(uf.same(0, 4));
}

}  // namespace
}  // namespace bgr

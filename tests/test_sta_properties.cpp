#include <gtest/gtest.h>

#include <functional>

#include "bgr/common/rng.hpp"
#include "bgr/graph/dag.hpp"
#include "bgr/timing/analyzer.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

using testutil::ChainCircuit;

/// Brute-force longest path by recursive enumeration (small graphs only).
double brute_longest(const Dag& dag, std::int32_t from, std::int32_t to) {
  if (from == to) return 0.0;
  double best = Dag::kMinusInf;
  for (const auto e : dag.out_edges(from)) {
    const auto& ed = dag.edge(e);
    const double rest = brute_longest(dag, ed.to, to);
    if (rest != Dag::kMinusInf) best = std::max(best, ed.weight + rest);
  }
  return best;
}

class DagRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DagRandom, LongestPathMatchesEnumeration) {
  Rng rng(GetParam());
  for (int round = 0; round < 15; ++round) {
    Dag dag;
    const std::int32_t n = rng.uniform_i32(3, 10);
    for (std::int32_t i = 0; i < n; ++i) (void)dag.add_vertex();
    // Random DAG: edges only forward in index order.
    for (std::int32_t i = 0; i < n; ++i) {
      for (std::int32_t j = i + 1; j < n; ++j) {
        if (rng.bernoulli(0.4)) {
          (void)dag.add_edge(i, j, rng.uniform_real(1.0, 9.0));
        }
      }
    }
    dag.freeze();
    const auto lp = dag.longest_from({0});
    for (std::int32_t v = 0; v < n; ++v) {
      const double expected = brute_longest(dag, 0, v);
      if (expected == Dag::kMinusInf) {
        EXPECT_EQ(lp[static_cast<std::size_t>(v)], Dag::kMinusInf);
      } else {
        EXPECT_NEAR(lp[static_cast<std::size_t>(v)], expected, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagRandom, ::testing::Values(10u, 20u, 30u));

/// The paper's Eq. (2) claim: "If w is on the original critical path, the
/// LM(e, P) is exactly the new M(P) value after deleting e. Otherwise, it
/// is a rather pessimistic estimation of the new M(P) value." Hence the
/// post-commit margin is never below LM.
class LmPessimism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LmPessimism, CommittedMarginNeverBelowLocalMargin) {
  Rng rng(GetParam());
  ChainCircuit c;
  DelayGraph dg(c.nl);
  PathConstraint pc;
  pc.name = "A2D";
  pc.sources = {c.pad_a};
  pc.sinks = {c.d_term};
  pc.limit_ps = 220.0;
  TimingAnalyzer an(dg, {pc});
  const ConstraintId p{0};

  const NetId nets[] = {c.a, c.n0, c.n1};
  for (int round = 0; round < 60; ++round) {
    // Random current state.
    for (const NetId n : nets) {
      dg.set_net_cap(n, rng.uniform_real(0.0, 0.2));
    }
    an.update_all();
    // Random hypothetical new arc delay on one net.
    const NetId target = nets[static_cast<std::size_t>(rng.uniform(0, 2))];
    const double d_new = dg.net_arc_delay(target) + rng.uniform_real(-8.0, 25.0);
    const double lm = an.local_margin_ps(p, target, d_new);
    EXPECT_LE(lm, an.margin_ps(p) + 1e-9);  // LM never exceeds M

    // Commit the change exactly and compare.
    const auto factors = c.nl.net_driver_factors(target);
    const double base = c.nl.net_fanin_cap_pf(target) * factors.tf_ps_per_pf;
    const double cap_new = (d_new - base) / factors.td_ps_per_pf;
    dg.set_net_cap(target, cap_new);
    an.update_for_net(target);
    EXPECT_GE(an.margin_ps(p), lm - 1e-9)
        << "LM must be a pessimistic bound (round " << round << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LmPessimism, ::testing::Values(1u, 2u, 3u));

/// On the single-path fixture every net arc lies on the critical path, so
/// LM is exact, not just a bound.
TEST(LmPessimism, ExactOnCriticalPath) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  PathConstraint pc;
  pc.name = "A2D";
  pc.sources = {c.pad_a};
  pc.sinks = {c.d_term};
  pc.limit_ps = 220.0;
  TimingAnalyzer an(dg, {pc});
  const ConstraintId p{0};
  const double d_new = dg.net_arc_delay(c.n0) + 12.0;
  const double lm = an.local_margin_ps(p, c.n0, d_new);
  const auto factors = c.nl.net_driver_factors(c.n0);
  const double base = c.nl.net_fanin_cap_pf(c.n0) * factors.tf_ps_per_pf;
  dg.set_net_cap(c.n0, (d_new - base) / factors.td_ps_per_pf);
  an.update_for_net(c.n0);
  EXPECT_NEAR(an.margin_ps(p), lm, 1e-9);
}

}  // namespace
}  // namespace bgr

// Oracle battery for the cost-distance steiner backend (DESIGN.md §16).
// The steiner engine is the first backend *allowed* to produce different
// trees than the reference Dijkstra, so its contract is property-based
// instead of bit-identity:
//  * verifier-clean — the independent signoff checks find nothing on any
//    of 50 fuzz-sampled designs;
//  * margin-dominant — no constraint ends up worse than the serial
//    Dijkstra baseline beyond the shared steiner_dominance_tol_ps bound,
//    and in aggregate the trees are shorter (that is the point);
//  * deterministic — bit-identical route text, margins and effort
//    counters across --threads 1 and 8, and invariant under cell/net
//    relabeling (the shared metamorphic harness of test_metamorphic);
//  * the bgr_fuzz steiner-dominance oracle that CI sweeps over seeds
//    1..200 stays wired to the same checks.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bgr/channel/channel_router.hpp"
#include "bgr/common/rng.hpp"
#include "bgr/fuzz/oracles.hpp"
#include "bgr/fuzz/spec_sampler.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/io/route_io.hpp"
#include "bgr/route/router.hpp"
#include "bgr/verify/verifier.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

struct RunResult {
  RouteOutcome outcome;
  std::vector<double> margins;
  std::string route_text;
  std::int64_t verify_errors = 0;
};

/// generate → route → channel → verify, mirroring the fuzz oracle's
/// pipeline so the battery and bgr_fuzz see the same artifacts.
RunResult route_full(const CircuitSpec& spec, PathSearchBackend backend,
                     std::int32_t threads) {
  Dataset design = generate_circuit(spec);
  RouterOptions options;
  options.path_search = backend;
  options.threads = threads;
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  RunResult run;
  run.outcome = router.run();
  for (const ConstraintId p : router.analyzer().constraints()) {
    run.margins.push_back(router.analyzer().margin_ps(p));
  }
  ChannelStage channel(router);
  channel.run();
  const RouteVerifier verifier(router, &channel);
  for (const VerifyIssue& issue : verifier.run()) {
    if (issue.severity == VerifyIssue::Severity::kError) ++run.verify_errors;
  }
  std::ostringstream os;
  write_route(os, router, channel);
  run.route_text = os.str();
  return run;
}

TEST(Steiner, VerifierCleanAndMarginDominantOn50Designs) {
  const FuzzOptions tol_options;
  double steiner_total_um = 0.0;
  double dijkstra_total_um = 0.0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const CircuitSpec spec = sample_spec(seed);
    const RunResult steiner = route_full(spec, PathSearchBackend::kSteiner, 1);
    EXPECT_EQ(steiner.verify_errors, 0);

    const RunResult baseline = route_full(spec, PathSearchBackend::kDijkstra, 1);
    steiner_total_um += steiner.outcome.total_length_um;
    dijkstra_total_um += baseline.outcome.total_length_um;
    const double tol = steiner_dominance_tol_ps(
        baseline.outcome.critical_delay_ps, tol_options);
    ASSERT_EQ(steiner.margins.size(), baseline.margins.size());
    for (std::size_t i = 0; i < steiner.margins.size(); ++i) {
      EXPECT_GE(steiner.margins[i], baseline.margins[i] - tol)
          << "constraint " << i << " (wirelength steiner "
          << steiner.outcome.total_length_um << " um vs dijkstra "
          << baseline.outcome.total_length_um << " um)";
    }
  }
  // Wirelength is reported, not gated sign-wise: on this extreme-corner
  // corpus the slack weights deliberately spend wire on tight nets, and
  // individual designs go either way (the realistic C1–C3 front lives in
  // bench_steiner). What is gated is that the trade never degenerates
  // into a corpus-wide wirelength blowup.
  EXPECT_LT(steiner_total_um, 1.05 * dijkstra_total_um)
      << "steiner corpus wirelength blew up vs dijkstra";
  ::testing::Test::RecordProperty("steiner_total_um", steiner_total_um);
  ::testing::Test::RecordProperty("dijkstra_total_um", dijkstra_total_um);
}

TEST(Steiner, BitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {3u, 7u, 12u, 19u, 26u, 33u, 41u, 48u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const CircuitSpec spec = sample_spec(seed);
    const RunResult serial = route_full(spec, PathSearchBackend::kSteiner, 1);
    const RunResult threaded = route_full(spec, PathSearchBackend::kSteiner, 8);
    EXPECT_EQ(serial.route_text, threaded.route_text);
    EXPECT_EQ(serial.margins, threaded.margins);
    EXPECT_EQ(serial.outcome.critical_delay_ps,
              threaded.outcome.critical_delay_ps);
    EXPECT_EQ(serial.outcome.total_length_um, threaded.outcome.total_length_um);
    ASSERT_EQ(serial.outcome.phases.size(), threaded.outcome.phases.size());
    for (std::size_t i = 0; i < serial.outcome.phases.size(); ++i) {
      const PhaseStats& pa = serial.outcome.phases[i];
      const PhaseStats& pb = threaded.outcome.phases[i];
      EXPECT_EQ(pa.deletions, pb.deletions) << pa.name;
      // The steiner searches themselves must be schedule-independent, so
      // even the effort counters match across thread counts.
      EXPECT_EQ(pa.path_searches, pb.path_searches) << pa.name;
      EXPECT_EQ(pa.path_pops, pb.path_pops) << pa.name;
      EXPECT_EQ(pa.path_relaxations, pb.path_relaxations) << pa.name;
    }
  }
}

TEST(Steiner, RelabelingYieldsIsomorphicRouteOutcome) {
  // Sink weights derive from constraint slacks and tree construction from
  // vertex geometry — none of which a cell/net renumbering moves, so the
  // routed result must be isomorphic (same shared harness and contract as
  // test_metamorphic, with the steiner engine selected).
  for (const std::uint64_t seed : {2u, 9u, 14u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Dataset design = generate_circuit(testutil::small_spec(seed));
    Rng rng(seed * 1000 + 7);
    const auto cell_perm =
        testutil::random_permutation(design.netlist.cell_count(), rng);
    const auto net_perm =
        testutil::random_permutation(design.netlist.net_count(), rng);
    const Dataset relabeled = testutil::relabel(design, cell_perm, net_perm);

    auto route = [](Dataset d) {
      RouterOptions options;
      options.path_search = PathSearchBackend::kSteiner;
      GlobalRouter router(d.netlist, std::move(d.placement), d.tech,
                          d.constraints, options);
      RunResult r;
      r.outcome = router.run();
      for (const ConstraintId p : router.analyzer().constraints()) {
        r.margins.push_back(router.analyzer().margin_ps(p));
      }
      return r;
    };
    const RunResult a = route(design);
    const RunResult b = route(relabeled);
    EXPECT_EQ(a.outcome.total_length_um, b.outcome.total_length_um);
    EXPECT_EQ(a.outcome.critical_delay_ps, b.outcome.critical_delay_ps);
    EXPECT_EQ(a.outcome.worst_margin_ps, b.outcome.worst_margin_ps);
    EXPECT_EQ(a.outcome.violated_constraints, b.outcome.violated_constraints);
    EXPECT_EQ(a.margins, b.margins);
  }
}

TEST(Steiner, FuzzOracleStaysWired) {
  // The full check_steiner_spec battery (crash / sta-recompute / verify /
  // thread-divergence / steiner-dominance) that CI fuzzes over seeds
  // 1..200 — a handful of seeds here so a wiring regression fails fast in
  // the unit suite, not first in the fuzz job.
  for (const std::uint64_t seed : {1u, 4u, 9u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto failure = check_steiner_spec(sample_spec(seed));
    EXPECT_FALSE(failure) << (failure ? failure->oracle + ": " +
                                            failure->detail
                                      : "");
  }
}

}  // namespace
}  // namespace bgr

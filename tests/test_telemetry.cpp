// Live-telemetry unit and integration tests (DESIGN.md §14): the
// rolling-window histogram and its quantile estimator, the watchdog
// predicate, the Prometheus text renderer, the loopback admin endpoint
// (scraped over a real socket, including the drain-aware /readyz flip),
// and the scheduler integration — trace ids on every lifecycle event,
// latency windows fed by finished jobs, the slow-job watchdog flagging.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bgr/obs/metrics.hpp"
#include "bgr/obs/telemetry.hpp"
#include "bgr/serve/admin.hpp"
#include "bgr/serve/design_cache.hpp"
#include "bgr/serve/scheduler.hpp"

namespace bgr {
namespace {

// ---- SlidingHistogram -----------------------------------------------------

TEST(SlidingHistogram, RecordsAndSnapshots) {
  SlidingHistogram h(4);
  for (const std::int64_t v : {10, 20, 30, 40, 50}) h.record(v);
  const SlidingHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 5);
  EXPECT_EQ(snap.sum, 150);
  EXPECT_EQ(snap.min, 10);
  EXPECT_EQ(snap.max, 50);
  EXPECT_GE(snap.p50, 10.0);
  EXPECT_LE(snap.p50, 50.0);
  EXPECT_LE(snap.p50, snap.p90);
  EXPECT_LE(snap.p90, snap.p99);
}

TEST(SlidingHistogram, EmptyWindowIsAllZero) {
  SlidingHistogram h(3);
  const SlidingHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.p50, 0.0);
  EXPECT_EQ(snap.p99, 0.0);
}

TEST(SlidingHistogram, AdvanceDropsTheOldestEpoch) {
  SlidingHistogram h(3);
  h.record(1000);
  EXPECT_EQ(h.snapshot().count, 1);
  // Two rotations keep the sample in the window (3 epochs), the third
  // reclaims its slice.
  h.advance();
  h.record(2000);
  h.advance();
  EXPECT_EQ(h.snapshot().count, 2);
  h.advance();
  const SlidingHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1);  // only the 2000 sample survives
  EXPECT_EQ(snap.min, 2000);
  h.advance();
  h.advance();
  EXPECT_EQ(h.snapshot().count, 0);
}

TEST(SlidingHistogram, ResetEmptiesEveryEpoch) {
  SlidingHistogram h(4);
  h.record(7);
  h.advance();
  h.record(9);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0);
}

TEST(SlidingHistogram, QuantileSingleSampleClampsToValue) {
  std::int64_t buckets[SlidingHistogram::kBuckets] = {};
  // One sample of value 100 (bit width 7 -> bucket 7).
  buckets[7] = 1;
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(SlidingHistogram::quantile(buckets, 1, q, 100, 100),
                     100.0)
        << "q=" << q;
  }
}

TEST(SlidingHistogram, QuantileIsMonotoneAndBounded) {
  SlidingHistogram h(2);
  for (std::int64_t v = 1; v <= 1000; ++v) h.record(v);
  const SlidingHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_LE(snap.p50, snap.p90);
  EXPECT_LE(snap.p90, snap.p99);
  EXPECT_GE(snap.p50, 1.0);
  EXPECT_LE(snap.p99, 1000.0);
  // The p50 of a uniform 1..1000 stream sits near the middle; the
  // power-of-two buckets bound the error to one bucket span.
  EXPECT_GT(snap.p50, 250.0);
  EXPECT_LT(snap.p50, 1000.0);
}

TEST(SlidingHistogram, NegativeValuesClampToZero) {
  SlidingHistogram h(2);
  h.record(-5);
  const SlidingHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.min, 0);
}

TEST(SlidingHistogram, ConcurrentRotationNeverTearsASnapshot) {
  // Stress the rotation path: writers hammer record() while one thread
  // rotates the ring as fast as it can and the main thread scrapes.
  // Before the per-epoch writer gate, a recorder racing clear() could
  // leave a torn epoch — count without its bucket, or min above max —
  // which the invariants below catch (and TSan the memory-order side).
  SlidingHistogram h(3);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&h, &stop] {
      std::int64_t v = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        h.record(v);
        v = v % 1000 + 1;
      }
    });
  }
  std::thread rotator([&h, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      h.advance();
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 1000; ++i) {
    const SlidingHistogram::Snapshot snap = h.snapshot();
    ASSERT_GE(snap.count, 0);
    if (snap.count == 0) continue;
    ASSERT_LE(snap.min, snap.max);
    ASSERT_GE(snap.min, 1);
    ASSERT_LE(snap.max, 1000);
    ASSERT_LE(snap.p50, snap.p90);
    ASSERT_LE(snap.p90, snap.p99);
    ASSERT_GE(snap.p50, static_cast<double>(snap.min));
    ASSERT_LE(snap.p99, static_cast<double>(snap.max));
    // Every counted sample's bucket landed before its count did, so the
    // merged bucket total can never run below the merged count.
    std::int64_t bucket_total = 0;
    for (const std::int64_t b : snap.buckets) bucket_total += b;
    ASSERT_GE(bucket_total, snap.count);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();
  rotator.join();
}

// ---- Watchdog predicate ---------------------------------------------------

TEST(Watchdog, FlagsOnlyPastTheMultiple) {
  // 16 finished jobs, rolling p99 of 100us: flag past 800us at 8x.
  EXPECT_FALSE(watchdog_should_flag(500.0, 100.0, 8.0, 16, 16));
  EXPECT_TRUE(watchdog_should_flag(900.0, 100.0, 8.0, 16, 16));
}

TEST(Watchdog, RequiresEnoughSamples) {
  EXPECT_FALSE(watchdog_should_flag(1e9, 100.0, 8.0, 15, 16));
  EXPECT_TRUE(watchdog_should_flag(1e9, 100.0, 8.0, 16, 16));
}

TEST(Watchdog, NegativeMultipleDisables) {
  EXPECT_FALSE(watchdog_should_flag(1e9, 100.0, -1.0, 1000, 0));
}

TEST(Watchdog, ZeroConfigFlagsEverything) {
  // min_samples 0 + multiple 0: every running job with elapsed > 0 flags
  // (the configuration tests use to force the code path).
  EXPECT_TRUE(watchdog_should_flag(1.0, 0.0, 0.0, 0, 0));
  EXPECT_FALSE(watchdog_should_flag(0.0, 0.0, 0.0, 0, 0));
}

// ---- Prometheus rendering -------------------------------------------------

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("route.deleted_edges"),
            "bgr_route_deleted_edges");
  EXPECT_EQ(prometheus_name("serve.e2e_us"), "bgr_serve_e2e_us");
  EXPECT_EQ(prometheus_name("weird-name! x"), "bgr_weird_name__x");
}

TEST(Prometheus, LabelValueEscaping) {
  EXPECT_EQ(prometheus_label_value("plain"), "plain");
  EXPECT_EQ(prometheus_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Prometheus, RenderExposesRegistryAndHub) {
  MetricsRegistry::global().reset();
  MetricsRegistry::global()
      .counter("telemetry_test.hits", MetricScope::kSemantic)
      .add(3);
  MetricsRegistry::global()
      .histogram("telemetry_test.sizes", MetricScope::kNonDeterministic)
      .record(100);

  TelemetryHub hub;
  hub.add_gauge("telemetry_test.depth", "Queue depth by client.", [] {
    GaugeSample a;
    a.labels.emplace_back("client", "stdio");
    a.value = 2.0;
    return std::vector<GaugeSample>{a};
  });
  SlidingHistogram window(2);
  window.record(50);
  window.record(150);
  hub.add_window("telemetry_test.wait_us", "Rolling wait.", &window);

  const std::string text = hub.render(MetricsRegistry::global());
  EXPECT_NE(text.find("# TYPE bgr_telemetry_test_hits counter"),
            std::string::npos);
  EXPECT_NE(text.find("bgr_telemetry_test_hits{scope=\"semantic\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE bgr_telemetry_test_sizes histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "bgr_telemetry_test_sizes_count{scope=\"nondeterministic\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("bgr_telemetry_test_depth{scope=\"nondeterministic\","
                "client=\"stdio\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE bgr_telemetry_test_wait_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("bgr_telemetry_test_wait_us{scope=\"nondeterministic\","
                      "quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(
      text.find("bgr_telemetry_test_wait_us_count{scope=\"nondeterministic\"}"
                " 2"),
      std::string::npos);
  // Every non-comment line is "<series> <value>".
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
}

// ---- AdminServer over a real socket ---------------------------------------

std::string http_get(std::int32_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(AdminServer, ServesMetricsHealthAndReadiness) {
  std::atomic<bool> ready{true};
  serve::AdminServer admin([] { return std::string("fake_metric 1\n"); },
                           [&ready] { return ready.load(); });
  ASSERT_TRUE(admin.start(0));
  ASSERT_GT(admin.port(), 0);

  const std::string metrics = http_get(admin.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("fake_metric 1"), std::string::npos);

  EXPECT_NE(http_get(admin.port(), "/healthz").find("ok"),
            std::string::npos);
  EXPECT_NE(http_get(admin.port(), "/readyz").find("200 OK"),
            std::string::npos);

  // Drain flip: /readyz turns 503 "draining", /healthz stays 200.
  ready.store(false);
  const std::string draining = http_get(admin.port(), "/readyz");
  EXPECT_NE(draining.find("503"), std::string::npos);
  EXPECT_NE(draining.find("draining"), std::string::npos);
  EXPECT_NE(http_get(admin.port(), "/healthz").find("200 OK"),
            std::string::npos);

  EXPECT_NE(http_get(admin.port(), "/nope").find("404"), std::string::npos);
  admin.stop();
}

/// Connects without sending anything; returns the fd.
int connect_only(std::int32_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string read_all(int fd) {
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  return response;
}

TEST(AdminServer, SilentClientTimesOutInsteadOfWedgingScrapes) {
  // Regression: connections are served serially, so a client that
  // connects and never sends used to park the admin thread in a blocking
  // recv forever, starving every subsequent /metrics and /readyz scrape.
  serve::AdminServer admin([] { return std::string("m 1\n"); },
                           [] { return true; });
  admin.set_request_timeout_ms(100);
  ASSERT_TRUE(admin.start(0));

  const int hang_fd = connect_only(admin.port());
  ASSERT_GE(hang_fd, 0);
  // A scrape queued behind the silent connection must still be answered
  // (within the request timeout, not never).
  EXPECT_NE(http_get(admin.port(), "/healthz").find("200 OK"),
            std::string::npos);
  // And the silent client was told why it was cut off.
  EXPECT_NE(read_all(hang_fd).find("408"), std::string::npos);
  ::close(hang_fd);
  admin.stop();
}

TEST(AdminServer, OversizedRequestHeadIsRejected) {
  serve::AdminServer admin([] { return std::string(); }, [] { return true; });
  admin.set_request_timeout_ms(1000);
  ASSERT_TRUE(admin.start(0));

  const int fd = connect_only(admin.port());
  ASSERT_GE(fd, 0);
  // 20 KiB of head with no terminating blank line blows the 16 KiB cap.
  const std::string junk(20 * 1024, 'A');
  (void)!::send(fd, junk.data(), junk.size(), 0);
  EXPECT_NE(read_all(fd).find("413"), std::string::npos);
  ::close(fd);
  admin.stop();
}

TEST(AdminServer, StopIsIdempotent) {
  serve::AdminServer admin([] { return std::string(); }, [] { return true; });
  ASSERT_TRUE(admin.start(0));
  admin.stop();
  admin.stop();
}

// ---- Scheduler integration ------------------------------------------------

struct EventLog {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<JsonValue> events;

  void add(const JsonValue& event) {
    std::lock_guard<std::mutex> lock(mutex);
    events.push_back(event);
    cv.notify_all();
  }
  /// Blocks until `n` terminal events arrived; returns a snapshot.
  std::vector<JsonValue> wait_terminals(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] {
      std::size_t count = 0;
      for (const JsonValue& e : events) {
        const std::string& name = e.at("event").as_string();
        if (name == "done" || name == "cancelled" || name == "failed") {
          ++count;
        }
      }
      return count >= n;
    });
    return events;
  }
};

serve::JobRequest preset_request(const std::string& id) {
  serve::JobRequest request;
  request.id = id;
  request.preset = "C1P1";
  return request;
}

TEST(SchedulerTelemetry, TraceIdsThreadThroughTheLifecycle) {
  serve::DesignCache cache;
  EventLog log;
  serve::SchedulerConfig config;
  config.max_jobs = 2;
  config.watchdog_multiple = -1.0;  // quiet
  serve::JobScheduler scheduler(
      config, &cache,
      [&log](const std::string&, const JsonValue& e) { log.add(e); });

  ASSERT_TRUE(scheduler.submit("stdio", preset_request("a")).accepted);
  ASSERT_TRUE(scheduler.submit("stdio", preset_request("b")).accepted);
  const std::vector<JsonValue> events = log.wait_terminals(2);

  std::string trace_a;
  std::string trace_b;
  for (const JsonValue& e : events) {
    const JsonValue* trace = e.find("trace");
    ASSERT_NE(trace, nullptr) << e.dump();
    EXPECT_EQ(trace->as_string().rfind("t-", 0), 0u) << e.dump();
    const std::string& id = e.at("id").as_string();
    std::string& slot = id == "a" ? trace_a : trace_b;
    if (slot.empty()) {
      slot = trace->as_string();
    } else {
      // accepted/started/done of one job agree on the id.
      EXPECT_EQ(slot, trace->as_string()) << e.dump();
    }
  }
  EXPECT_FALSE(trace_a.empty());
  EXPECT_FALSE(trace_b.empty());
  EXPECT_NE(trace_a, trace_b);

  scheduler.drain_and_stop();
  // Finished jobs fed the rolling windows before their done event.
  EXPECT_EQ(scheduler.latency().e2e_us.snapshot().count, 2);
  EXPECT_EQ(scheduler.latency().queue_wait_us.snapshot().count, 2);
  EXPECT_EQ(scheduler.latency().parse_us.snapshot().count, 2);
  // The duplicate job is a result-hit: only the first routes.
  EXPECT_GE(scheduler.latency().route_us.snapshot().count, 1);
  EXPECT_EQ(scheduler.watchdog_flags(), 0);
}

TEST(SchedulerTelemetry, QueueDepthsReportPausedBacklog) {
  serve::DesignCache cache;
  EventLog log;
  serve::SchedulerConfig config;
  config.start_paused = true;
  config.watchdog_multiple = -1.0;
  serve::JobScheduler scheduler(
      config, &cache,
      [&log](const std::string&, const JsonValue& e) { log.add(e); });

  ASSERT_TRUE(scheduler.submit("alice", preset_request("a1")).accepted);
  ASSERT_TRUE(scheduler.submit("alice", preset_request("a2")).accepted);
  ASSERT_TRUE(scheduler.submit("bob", preset_request("b1")).accepted);
  const auto depths = scheduler.queue_depths();
  ASSERT_EQ(depths.size(), 2u);
  EXPECT_EQ(depths[0].first, "alice");
  EXPECT_EQ(depths[0].second, 2);
  EXPECT_EQ(depths[1].first, "bob");
  EXPECT_EQ(depths[1].second, 1);

  scheduler.resume();
  (void)log.wait_terminals(3);
  EXPECT_TRUE(scheduler.queue_depths().empty());
  scheduler.drain_and_stop();
}

TEST(SchedulerTelemetry, WatchdogFlagsASlowJob) {
  serve::DesignCache cache;
  EventLog log;
  serve::SchedulerConfig config;
  config.max_jobs = 1;
  // Flag every running job on every 1ms tick: p99 threshold 0, no
  // minimum sample count. A C1P1 route takes well over a millisecond.
  config.housekeeping_interval_ms = 1;
  config.watchdog_multiple = 0.0;
  config.watchdog_min_samples = 0;
  serve::JobScheduler scheduler(
      config, &cache,
      [&log](const std::string&, const JsonValue& e) { log.add(e); });

  ASSERT_TRUE(scheduler.submit("stdio", preset_request("slow")).accepted);
  (void)log.wait_terminals(1);
  scheduler.drain_and_stop();
  EXPECT_EQ(scheduler.watchdog_flags(), 1);  // once per job, not per tick
}

}  // namespace
}  // namespace bgr

#pragma once

// Shared hand-built fixtures for the unit tests. The delay numbers below
// are worked out from the default ECL library:
//   BUF1: T0 70, Tf 120, Td 260, Fin 0.025
//   NOR2: T0 95, Tf 150, Td 300, Fin 0.030
//   DFF:  CK→Q T0 180, Q Tf 140 / Td 300, Fin(D) 0.035, Fin(CK) 0.030
#include <vector>

#include "bgr/gen/generator.hpp"
#include "bgr/layout/placement.hpp"
#include "bgr/netlist/netlist.hpp"
#include "bgr/timing/analyzer.hpp"

namespace bgr::testutil {

/// PI A → g0(BUF1) → g1(NOR2, second input PI B) → ff(DFF).D;
/// pad CK → ff.CK; ff.Q → pad PO.
/// Zero-wire path delays: A→D = 176.35 ps, CK→PO = 187 ps.
struct ChainCircuit {
  Netlist nl{Library::make_ecl_default()};
  CellId g0, g1, ff;
  NetId a, b, ck, n0, n1, q;
  TerminalId pad_a, pad_b, pad_ck, pad_po;
  TerminalId d_term;  // ff.D sink terminal

  ChainCircuit() {
    const Library& lib = nl.library();
    g0 = nl.add_cell("g0", lib.find("BUF1"));
    g1 = nl.add_cell("g1", lib.find("NOR2"));
    ff = nl.add_cell("ff", lib.find("DFF"));
    a = nl.add_net("a");
    b = nl.add_net("b");
    ck = nl.add_net("ck");
    n0 = nl.add_net("n0");
    n1 = nl.add_net("n1");
    q = nl.add_net("q");
    pad_a = nl.add_pad_input("A", a, 100.0, 220.0);
    pad_b = nl.add_pad_input("B", b, 100.0, 220.0);
    pad_ck = nl.add_pad_input("CK", ck, 60.0, 140.0);
    auto pin = [&](CellId c, const char* name) {
      return nl.cell_type(c).find_pin(name);
    };
    (void)nl.connect(a, g0, pin(g0, "I0"));
    (void)nl.connect(n0, g0, pin(g0, "O"));
    (void)nl.connect(n0, g1, pin(g1, "I0"));
    (void)nl.connect(b, g1, pin(g1, "I1"));
    (void)nl.connect(n1, g1, pin(g1, "O"));
    d_term = nl.connect(n1, ff, pin(ff, "D"));
    (void)nl.connect(ck, ff, pin(ff, "CK"));
    (void)nl.connect(q, ff, pin(ff, "Q"));
    pad_po = nl.add_pad_output("PO", q, 0.05);
    nl.validate();
  }

  /// Placement on 2 rows used by the layout-dependent tests.
  Placement make_placement() {
    Placement pl(2, 30);
    pl.place(nl, g0, RowId{0}, 2);
    pl.place(nl, g1, RowId{0}, 14);
    pl.place(nl, ff, RowId{1}, 8);
    const CellId fd0 = nl.add_cell("fd0", nl.library().find("FEED"));
    const CellId fd1 = nl.add_cell("fd1", nl.library().find("FEED"));
    const CellId fd2 = nl.add_cell("fd2", nl.library().find("FEED"));
    pl.place(nl, fd0, RowId{0}, 8);
    pl.place(nl, fd1, RowId{0}, 20);
    pl.place(nl, fd2, RowId{1}, 20);
    for (const TerminalId t : nl.terminals()) {
      const Terminal& term = nl.terminal(t);
      if (term.kind == TerminalKind::kCellPin) continue;
      pl.place_pad(t, term.kind == TerminalKind::kPadIn, IntInterval{0, 29});
    }
    return pl;
  }

  /// Zero-wire delays of the two end-to-end paths.
  static constexpr double kPathADelayPs = 176.35;  // A → ff.D
  static constexpr double kPathCkDelayPs = 187.0;  // CK → PO
};

/// Small generator spec for fast end-to-end property tests.
inline CircuitSpec small_spec(std::uint64_t seed) {
  CircuitSpec spec;
  spec.name = "S" + std::to_string(seed);
  spec.seed = seed;
  spec.rows = 5;
  spec.target_cells = 120;
  spec.levels = 6;
  spec.primary_inputs = 6;
  spec.primary_outputs = 6;
  spec.diff_pairs = 2;
  spec.clock_buffers = 1;
  spec.path_constraints = 8;
  return spec;
}

}  // namespace bgr::testutil

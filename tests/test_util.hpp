#pragma once

// Shared hand-built fixtures for the unit tests. The delay numbers below
// are worked out from the default ECL library:
//   BUF1: T0 70, Tf 120, Td 260, Fin 0.025
//   NOR2: T0 95, Tf 150, Td 300, Fin 0.030
//   DFF:  CK→Q T0 180, Q Tf 140 / Td 300, Fin(D) 0.035, Fin(CK) 0.030
#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "bgr/common/rng.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/layout/placement.hpp"
#include "bgr/netlist/netlist.hpp"
#include "bgr/route/path_search.hpp"
#include "bgr/timing/analyzer.hpp"

namespace bgr::testutil {

/// One registered path-search engine, for test sweeps. Listing an engine
/// here is what gets it picked up by the differential batteries — add new
/// backends to all_path_search_engines() instead of hardcoding backend
/// lists in individual tests.
struct EngineInfo {
  PathSearchBackend backend;
  const char* name;
  /// Engines in the bit-identical family must reproduce the reference
  /// Dijkstra trees and RouteOutcome exactly (DESIGN.md §11); engines
  /// outside it (steiner) are only swept for thread-count identity here —
  /// the rest of their contract lives in their own oracle battery
  /// (test_steiner, DESIGN.md §16).
  bool bit_identical_to_reference;
};

inline std::vector<EngineInfo> all_path_search_engines() {
  return {
      {PathSearchBackend::kDijkstra, "dijkstra", true},
      {PathSearchBackend::kAstar, "astar", true},
      {PathSearchBackend::kSteiner, "steiner", false},
  };
}

/// PI A → g0(BUF1) → g1(NOR2, second input PI B) → ff(DFF).D;
/// pad CK → ff.CK; ff.Q → pad PO.
/// Zero-wire path delays: A→D = 176.35 ps, CK→PO = 187 ps.
struct ChainCircuit {
  Netlist nl{Library::make_ecl_default()};
  CellId g0, g1, ff;
  NetId a, b, ck, n0, n1, q;
  TerminalId pad_a, pad_b, pad_ck, pad_po;
  TerminalId d_term;  // ff.D sink terminal

  ChainCircuit() {
    const Library& lib = nl.library();
    g0 = nl.add_cell("g0", lib.find("BUF1"));
    g1 = nl.add_cell("g1", lib.find("NOR2"));
    ff = nl.add_cell("ff", lib.find("DFF"));
    a = nl.add_net("a");
    b = nl.add_net("b");
    ck = nl.add_net("ck");
    n0 = nl.add_net("n0");
    n1 = nl.add_net("n1");
    q = nl.add_net("q");
    pad_a = nl.add_pad_input("A", a, 100.0, 220.0);
    pad_b = nl.add_pad_input("B", b, 100.0, 220.0);
    pad_ck = nl.add_pad_input("CK", ck, 60.0, 140.0);
    auto pin = [&](CellId c, const char* name) {
      return nl.cell_type(c).find_pin(name);
    };
    (void)nl.connect(a, g0, pin(g0, "I0"));
    (void)nl.connect(n0, g0, pin(g0, "O"));
    (void)nl.connect(n0, g1, pin(g1, "I0"));
    (void)nl.connect(b, g1, pin(g1, "I1"));
    (void)nl.connect(n1, g1, pin(g1, "O"));
    d_term = nl.connect(n1, ff, pin(ff, "D"));
    (void)nl.connect(ck, ff, pin(ff, "CK"));
    (void)nl.connect(q, ff, pin(ff, "Q"));
    pad_po = nl.add_pad_output("PO", q, 0.05);
    nl.validate();
  }

  /// Placement on 2 rows used by the layout-dependent tests.
  Placement make_placement() {
    Placement pl(2, 30);
    pl.place(nl, g0, RowId{0}, 2);
    pl.place(nl, g1, RowId{0}, 14);
    pl.place(nl, ff, RowId{1}, 8);
    const CellId fd0 = nl.add_cell("fd0", nl.library().find("FEED"));
    const CellId fd1 = nl.add_cell("fd1", nl.library().find("FEED"));
    const CellId fd2 = nl.add_cell("fd2", nl.library().find("FEED"));
    pl.place(nl, fd0, RowId{0}, 8);
    pl.place(nl, fd1, RowId{0}, 20);
    pl.place(nl, fd2, RowId{1}, 20);
    for (const TerminalId t : nl.terminals()) {
      const Terminal& term = nl.terminal(t);
      if (term.kind == TerminalKind::kCellPin) continue;
      pl.place_pad(t, term.kind == TerminalKind::kPadIn, IntInterval{0, 29});
    }
    return pl;
  }

  /// Zero-wire delays of the two end-to-end paths.
  static constexpr double kPathADelayPs = 176.35;  // A → ff.D
  static constexpr double kPathCkDelayPs = 187.0;  // CK → PO
};

/// Rebuilds the dataset with cells and nets renumbered by the given
/// permutations (new id i holds what old id perm[i] held). Terminals are
/// renumbered implicitly by the rebuild order; constraints and pad sites
/// are remapped. The result describes the *same* physical design — the
/// shared harness of the metamorphic relabeling batteries
/// (test_metamorphic, test_steiner).
inline Dataset relabel(const Dataset& d,
                       const std::vector<std::int32_t>& cell_perm,
                       const std::vector<std::int32_t>& net_perm) {
  const Netlist& old = d.netlist;
  Netlist netlist(old.library());
  std::vector<CellId> cell_map(static_cast<std::size_t>(old.cell_count()));
  for (const std::int32_t o : cell_perm) {
    const CellId old_id{o};
    cell_map[static_cast<std::size_t>(o)] =
        netlist.add_cell(old.cell(old_id).name, old.cell(old_id).type);
  }
  std::vector<NetId> net_map(static_cast<std::size_t>(old.net_count()));
  for (const std::int32_t o : net_perm) {
    const NetId old_id{o};
    net_map[static_cast<std::size_t>(o)] =
        netlist.add_net(old.net(old_id).name, old.net(old_id).pitch_width);
  }

  // Terminals in their *original global creation order* so each keeps its
  // TerminalId (the pad-assignment pass processes pads in TerminalId order,
  // a documented processing order, not an identity the relabeling is meant
  // to scramble). Only the nets and cells they attach to are renumbered.
  std::vector<TerminalId> term_map(
      static_cast<std::size_t>(old.terminal_count()), TerminalId::invalid());
  for (std::int32_t ti = 0; ti < old.terminal_count(); ++ti) {
    const TerminalId t{ti};
    const Terminal& term = old.terminal(t);
    const NetId new_net = net_map[static_cast<std::size_t>(term.net.value())];
    TerminalId mapped = TerminalId::invalid();
    switch (term.kind) {
      case TerminalKind::kCellPin:
        mapped = netlist.connect(new_net,
                                 cell_map[static_cast<std::size_t>(
                                     term.cell.value())],
                                 term.pin);
        break;
      case TerminalKind::kPadIn:
        mapped = netlist.add_pad_input(term.pad_name, new_net,
                                       term.pad_tf_ps_per_pf,
                                       term.pad_td_ps_per_pf);
        break;
      case TerminalKind::kPadOut:
        mapped = netlist.add_pad_output(term.pad_name, new_net,
                                        term.pad_cap_pf);
        break;
    }
    term_map[static_cast<std::size_t>(t.value())] = mapped;
  }
  for (const NetId n : old.nets()) {
    const Net& net = old.net(n);
    if (net.is_differential() && net.diff_primary) {
      netlist.make_differential(net_map[static_cast<std::size_t>(n.value())],
                                net_map[static_cast<std::size_t>(
                                    net.diff_partner.value())]);
    }
  }

  Placement placement(d.placement.row_count(), d.placement.width());
  for (const CellId c : old.cells()) {
    const PlacedCell& pc = d.placement.placed(c);
    placement.place(netlist, cell_map[static_cast<std::size_t>(c.value())],
                    pc.row, pc.x);
  }
  for (const auto& [pad, site] : d.placement.pad_sites()) {
    placement.place_pad(term_map[static_cast<std::size_t>(pad.value())],
                        site.top, site.window);
  }

  std::vector<PathConstraint> constraints;
  for (const PathConstraint& pc : d.constraints) {
    PathConstraint mapped;
    mapped.name = pc.name;
    mapped.limit_ps = pc.limit_ps;
    for (const TerminalId t : pc.sources) {
      mapped.sources.push_back(term_map[static_cast<std::size_t>(t.value())]);
    }
    for (const TerminalId t : pc.sinks) {
      mapped.sinks.push_back(term_map[static_cast<std::size_t>(t.value())]);
    }
    constraints.push_back(std::move(mapped));
  }

  return Dataset{d.name + "_relabel", d.spec,
                 std::move(netlist), std::move(placement),
                 std::move(constraints), d.tech};
}

inline std::vector<std::int32_t> random_permutation(std::int32_t n, Rng& rng) {
  std::vector<std::int32_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::int32_t i = n - 1; i > 0; --i) {
    const std::int32_t j = rng.uniform_i32(0, i);
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

/// Small generator spec for fast end-to-end property tests.
inline CircuitSpec small_spec(std::uint64_t seed) {
  CircuitSpec spec;
  spec.name = "S" + std::to_string(seed);
  spec.seed = seed;
  spec.rows = 5;
  spec.target_cells = 120;
  spec.levels = 6;
  spec.primary_inputs = 6;
  spec.primary_outputs = 6;
  spec.diff_pairs = 2;
  spec.clock_buffers = 1;
  spec.path_constraints = 8;
  return spec;
}

}  // namespace bgr::testutil

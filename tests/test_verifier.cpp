#include "bgr/verify/verifier.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "bgr/channel/geometry.hpp"
#include "bgr/metrics/experiment.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

struct RoutedFixture {
  Dataset ds;
  Netlist nl;
  GlobalRouter router;
  ChannelStage channel;

  explicit RoutedFixture(std::uint64_t seed,
                         RouterOptions options = RouterOptions{})
      : ds(generate_circuit(testutil::small_spec(seed))),
        nl(ds.netlist),
        router(nl, ds.placement, ds.tech, ds.constraints, options),
        channel((void(router.run()), router)) {
    channel.run();
  }
};

TEST(Verifier, CleanOnRoutedDesign) {
  RoutedFixture f(301);
  const RouteVerifier verifier(f.router, &f.channel);
  const auto issues = verifier.run();
  for (const VerifyIssue& issue : issues) {
    ADD_FAILURE() << issue.check << ": " << issue.message;
  }
  EXPECT_FALSE(RouteVerifier::has_errors(issues));
}

TEST(Verifier, CleanAcrossModes) {
  for (const bool sequential : {false, true}) {
    RouterOptions options;
    options.concurrent_initial = !sequential;
    RoutedFixture f(302, options);
    const RouteVerifier verifier(f.router, &f.channel);
    EXPECT_FALSE(RouteVerifier::has_errors(verifier.run()))
        << (sequential ? "sequential" : "concurrent");
  }
}

TEST(Verifier, CleanWithoutChannelStage) {
  RoutedFixture f(303);
  const RouteVerifier verifier(f.router, nullptr);
  EXPECT_FALSE(RouteVerifier::has_errors(verifier.run()));
}

TEST(Geometry, FloorplanAddsUp) {
  RoutedFixture f(304);
  const ChipGeometry geometry(f.router.placement(), f.router.tech(),
                              f.channel.track_counts());
  EXPECT_NEAR(geometry.chip_height_um(), f.channel.chip_height_um(), 1e-6);
  EXPECT_NEAR(geometry.chip_width_um(),
              f.router.placement().chip_width_um(f.router.tech()), 1e-6);
  // Channels and rows alternate bottom-up without overlap.
  const auto R = f.router.placement().row_count();
  for (std::int32_t r = 0; r < R; ++r) {
    EXPECT_GT(geometry.row_bottom_um(r), geometry.channel_bottom_um(r));
    EXPECT_LT(geometry.row_bottom_um(r), geometry.channel_bottom_um(r + 1));
  }
}

TEST(Geometry, WireSegmentsInsideChipAndAxisAligned) {
  RoutedFixture f(305);
  const ChipGeometry geometry(f.router.placement(), f.router.tech(),
                              f.channel.track_counts());
  const auto wires = extract_wires(f.router, f.channel, geometry);
  EXPECT_FALSE(wires.empty());
  for (const WireSegment& seg : wires) {
    EXPECT_TRUE(seg.x1 == seg.x2 || seg.y1 == seg.y2);
    EXPECT_LE(seg.x1, seg.x2);
    EXPECT_LE(seg.y1, seg.y2);
    EXPECT_GE(seg.x1, 0.0);
    EXPECT_GE(seg.y1, 0.0);
    EXPECT_LE(seg.x2, geometry.chip_width_um() + 1e-6);
    EXPECT_LE(seg.y2, geometry.chip_height_um() + 1e-6);
    EXPECT_GT(seg.length_um(), 0.0);
  }
}

TEST(Geometry, TotalWireMatchesDetailedLengthsApproximately) {
  RoutedFixture f(306);
  const ChipGeometry geometry(f.router.placement(), f.router.tech(),
                              f.channel.track_counts());
  const auto wires = extract_wires(f.router, f.channel, geometry);
  double geometric = 0.0;
  for (const WireSegment& seg : wires) geometric += seg.length_um();
  const double reported = f.channel.total_detailed_length_um();
  // The geometric expansion uses real channel heights for the crossings
  // where the detailed-length bookkeeping uses the nominal row height, so
  // the totals differ by the channel-depth share — same order, not equal.
  EXPECT_GT(geometric, reported * 0.5);
  EXPECT_LT(geometric, reported * 2.0);
}

TEST(Geometry, SvgWritten) {
  RoutedFixture f(307);
  const std::string path = ::testing::TempDir() + "/bgr_chip_test.svg";
  write_svg(path, f.router, f.channel);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string first;
  std::getline(is, first);
  EXPECT_NE(first.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace bgr

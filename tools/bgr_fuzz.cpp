// Fuzzing driver for the full routing pipeline and the text parsers.
//
// Usage:
//   bgr_fuzz [--seeds A..B]
//            [--mode spec|design|route|json|serve|steiner-dominance|all]
//            [--corpus-out DIR] [--no-shrink] [--threads N] [--verbose]
//
// --mode all rotates through the five historical modes; steiner-dominance
// (the cost-distance backend's margin oracle, DESIGN.md §16) is opt-in so
// the seed→mode mapping of existing campaigns stays stable.
//
// Every seed is deterministic: the same seed and mode always exercise the
// same input. Exit code 0 means every case passed its oracles; 1 means at
// least one failure (reproducers land in --corpus-out when given); 2 means
// a usage error.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "bgr/common/parse.hpp"
#include "bgr/fuzz/fuzzer.hpp"
#include "cli_common.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: bgr_fuzz [--seeds A..B] [--mode spec|design|route|json|"
               "serve|steiner-dominance|all]\n"
               "                [--corpus-out DIR] [--no-shrink] [--threads N]"
               " [--verbose] [--help]\n");
}

bool parse_seed_range(const char* text, std::uint64_t* lo, std::uint64_t* hi) {
  const std::string value = text;
  const std::size_t dots = value.find("..");
  if (dots == std::string::npos) {
    const std::optional<std::int64_t> single = bgr::parse_i64(value);
    if (!single || *single < 0) return false;
    *lo = *hi = static_cast<std::uint64_t>(*single);
    return true;
  }
  const std::optional<std::int64_t> a = bgr::parse_i64(value.substr(0, dots));
  const std::optional<std::int64_t> b = bgr::parse_i64(value.substr(dots + 2));
  if (!a || !b || *a < 0 || *b < *a) return false;
  *lo = static_cast<std::uint64_t>(*a);
  *hi = static_cast<std::uint64_t>(*b);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bgr::FuzzCampaign campaign;
  campaign.seed_lo = 1;
  campaign.seed_hi = 100;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--seeds") == 0) {
      const char* value = next_value();
      if (value == nullptr ||
          !parse_seed_range(value, &campaign.seed_lo, &campaign.seed_hi)) {
        std::fprintf(stderr,
                     "error: --seeds expects A..B (or a single seed), got "
                     "'%s'\n",
                     value != nullptr ? value : "<missing>");
        return bgr::cli::kExitUsage;
      }
    } else if (std::strcmp(arg, "--mode") == 0) {
      const char* value = next_value();
      if (value == nullptr) return bgr::cli::missing_value("--mode");
      if (std::strcmp(value, "spec") == 0) {
        campaign.only_mode = bgr::FuzzMode::kSpec;
      } else if (std::strcmp(value, "design") == 0) {
        campaign.only_mode = bgr::FuzzMode::kDesignText;
      } else if (std::strcmp(value, "route") == 0) {
        campaign.only_mode = bgr::FuzzMode::kRouteText;
      } else if (std::strcmp(value, "json") == 0) {
        campaign.only_mode = bgr::FuzzMode::kJsonText;
      } else if (std::strcmp(value, "serve") == 0) {
        campaign.only_mode = bgr::FuzzMode::kServeText;
      } else if (std::strcmp(value, "steiner-dominance") == 0) {
        campaign.only_mode = bgr::FuzzMode::kSteinerDominance;
      } else if (std::strcmp(value, "all") == 0) {
        campaign.only_mode.reset();
      } else {
        std::fprintf(stderr,
                     "error: --mode expects spec|design|route|json|serve|"
                     "steiner-dominance|all, got '%s'\n",
                     value);
        return bgr::cli::kExitUsage;
      }
    } else if (std::strcmp(arg, "--corpus-out") == 0) {
      const char* value = next_value();
      if (value == nullptr) return bgr::cli::missing_value("--corpus-out");
      campaign.corpus_out = value;
    } else if (std::strcmp(arg, "--threads") == 0) {
      std::int32_t threads = 0;
      if (!bgr::cli::parse_int_option("--threads", next_value(), 1, 1024,
                                      &threads)) {
        return bgr::cli::kExitUsage;
      }
      campaign.oracle.alt_threads = threads;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      campaign.shrink = false;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      campaign.verbose = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      usage(stdout);
      return bgr::cli::kExitOk;
    } else {
      return bgr::cli::unknown_option(arg, usage);
    }
  }

  const int failures = bgr::run_campaign(campaign, std::cout);
  return failures > 0 ? bgr::cli::kExitFailure : bgr::cli::kExitOk;
}

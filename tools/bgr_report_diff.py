#!/usr/bin/env python3
"""Diff two bgr run reports (or bench BENCH_*.json documents).

Semantic content — everything outside the "run" section, "wall"
sub-objects, the nondeterministic metric scope and wall-derived scalar
keys — must match exactly: any difference is a regression and exits 1.
Wall-shaped values are compared with a relative threshold instead: by
default they only warn (machines differ), with --wall-threshold they fail
the diff when the new value is slower by more than the given fraction.

  bgr_report_diff.py baseline.json candidate.json
  bgr_report_diff.py baseline.json candidate.json --wall-threshold 0.25

Key-name patterns treated as wall-derived wherever they appear (bench
documents put timings outside "run": e.g. bench_path_search's per-mode
"route_seconds" and "wall_speedup"): *seconds*, *speedup*, *_per_second*,
*_us, *wall*, *bytes*. Exit status: 0 clean, 1 semantic regression (or
wall threshold exceeded), 2 usage/IO error.
"""

import argparse
import json
import re
import sys

# Substring patterns (case-insensitive) marking a key as wall-derived no
# matter where it sits in the document.
WALL_KEY_RE = re.compile(
    r"seconds|speedup|per_second|wall|_us$|bytes|latency", re.IGNORECASE)
# Sections/keys stripped wholesale, matching check_run_report.py's
# strip_nondeterministic contract.
STRIP_KEYS = ("run", "wall", "nondeterministic")


def fail(msg, code=2):
    print(f"bgr_report_diff: FAIL: {msg}", file=sys.stderr)
    sys.exit(code)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def is_wall_key(key):
    return isinstance(key, str) and WALL_KEY_RE.search(key) is not None


def split_semantic(node):
    """Returns (semantic, walls): the document with wall-shaped content
    removed, and a flat {path: value} map of the numeric values removed."""
    walls = {}

    def walk(node, prefix):
        if isinstance(node, dict):
            out = {}
            for key, value in node.items():
                path = f"{prefix}/{key}"
                if key in STRIP_KEYS:
                    continue
                if is_wall_key(key) and isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    walls[path] = value
                    continue
                out[key] = walk(value, path)
            return out
        if isinstance(node, list):
            return [walk(v, f"{prefix}[{i}]") for i, v in enumerate(node)]
        return node

    return walk(node, ""), walls


def diff_paths(a, b, prefix=""):
    if isinstance(a, dict) and isinstance(b, dict):
        out = []
        for k in sorted(set(a) | set(b)):
            if k not in a:
                out.append(f"{prefix}/{k} (only in candidate)")
            elif k not in b:
                out.append(f"{prefix}/{k} (only in baseline)")
            else:
                out.extend(diff_paths(a[k], b[k], f"{prefix}/{k}"))
        return out
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return [f"{prefix} (length {len(a)} vs {len(b)})"]
        out = []
        for i, (x, y) in enumerate(zip(a, b)):
            out.extend(diff_paths(x, y, f"{prefix}[{i}]"))
        return out
    return [] if a == b else [f"{prefix} ({a!r} vs {b!r})"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="reference report JSON")
    parser.add_argument("candidate", help="report JSON under test")
    parser.add_argument("--wall-threshold", type=float, metavar="FRAC",
                        help="fail when a wall-shaped value regresses by "
                             "more than FRAC (e.g. 0.25 = 25%% slower); "
                             "default: warn only")
    args = parser.parse_args()

    base_sem, base_walls = split_semantic(load(args.baseline))
    cand_sem, cand_walls = split_semantic(load(args.candidate))

    diffs = diff_paths(base_sem, cand_sem)
    if diffs:
        for d in diffs[:30]:
            print(f"  semantic diff at {d}", file=sys.stderr)
        fail(f"{args.baseline} vs {args.candidate}: {len(diffs)} semantic "
             f"difference(s)", code=1)

    wall_fail = False
    for path in sorted(set(base_walls) & set(cand_walls)):
        old, new = base_walls[path], cand_walls[path]
        if old <= 0:
            continue
        rel = (new - old) / old
        if args.wall_threshold is not None and rel > args.wall_threshold:
            print(f"  wall regression at {path}: {old} -> {new} "
                  f"(+{rel:.1%} > {args.wall_threshold:.0%})",
                  file=sys.stderr)
            wall_fail = True
        elif abs(rel) > 0.10:
            print(f"bgr_report_diff: note: wall drift at {path}: "
                  f"{old} -> {new} ({rel:+.1%})")
    if wall_fail:
        fail("wall threshold exceeded", code=1)

    print(f"bgr_report_diff: OK ({args.baseline} vs {args.candidate}: "
          f"semantic identical, {len(base_walls)} wall value(s) "
          f"threshold-checked)")


if __name__ == "__main__":
    main()

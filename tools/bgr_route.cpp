// Command-line front end to the router: routes a `bgr-design 1` file (or a
// built-in dataset given as @NAME) and reports delay, area, length and the
// per-phase statistics; optionally saves the routed result.
//
//   bgr_route <design.txt | @C1P1> [options]
//     --unconstrained     drop the path constraints (area-only baseline)
//     --rc                use the Elmore RC delay model extension
//     --sequential        sequential (net-at-a-time) initial routing
//     --no-improve        skip the §3.5 improvement phases
//     --incremental-sta {on,off}
//                         dirty-cone incremental arrival-time updates (on,
//                         the default) or full per-constraint re-sweeps
//                         (off, the original behavior); the routed result
//                         is bit-identical either way
//     --shard-deletion {on,off}
//                         sharded concurrent edge deletion (on, the
//                         default) or the single global scan loop (off);
//                         the routed result is bit-identical either way
//     --path-search {astar,dijkstra,steiner}
//                         tentative-tree search backend: goal-oriented A*
//                         over a dial queue (astar, the default) or the
//                         reference binary-heap Dijkstra — bit-identical
//                         results either way — or the cost-distance
//                         Steiner construction (steiner), which trades
//                         wirelength against slack-weighted source–sink
//                         paths and is allowed to differ (deterministic,
//                         verifier-clean, margin-dominant; DESIGN.md §16)
//     --lookahead {exact,map}
//                         source of the A* lower bounds: an exact
//                         multi-source Dijkstra per routing graph (exact,
//                         the default) or derivation from the chip-level
//                         lookahead table built once per design (map);
//                         the routed result is bit-identical either way
//     --min-capacity-search
//                         instead of routing once, binary-search the
//                         minimum per-channel track capacity the design
//                         still routes and verifies under; --metrics-out
//                         then writes a bench.capacity report
//     --threads N         exec/ worker threads (1 = serial, 0 = hardware);
//                         the result is bit-identical for any N
//     --repeat K          route K times (fresh design each run) and report
//                         per-run and best wall times
//     --save-route FILE   write the routed trees/tracks (bgr-route 1)
//     --save-design FILE  write the (possibly feed-cell-extended) design
//     --skew              print the multi-pitch clock skew report
//     --map               render the chip map and congestion chart
//     --svg FILE          draw the routed chip as an SVG
//     --verify            run the signoff checks on the result
//     --stats             print design statistics
//     --metrics-out FILE  write the machine-readable run report (JSON)
//     --trace-out FILE    write a Chrome trace-event file of the run
//     --log-format {text,json}
//                         diagnostic log sink format (default text)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bgr/channel/channel_router.hpp"
#include "bgr/common/log.hpp"
#include "bgr/common/parse.hpp"
#include "bgr/io/design_io.hpp"
#include "bgr/io/route_io.hpp"
#include "bgr/io/ascii_art.hpp"
#include "bgr/channel/geometry.hpp"
#include "bgr/verify/capacity_search.hpp"
#include "bgr/verify/verifier.hpp"
#include "bgr/metrics/skew.hpp"
#include "bgr/metrics/report.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/obs/trace.hpp"
#include "bgr/common/stopwatch.hpp"
#include "cli_common.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: bgr_route <design.txt | @C1P1> [--unconstrained] "
               "[--rc] [--sequential] [--no-improve] "
               "[--incremental-sta on|off] [--shard-deletion on|off] "
               "[--path-search astar|dijkstra|steiner] "
               "[--lookahead exact|map] [--min-capacity-search] "
               "[--threads N] "
               "[--repeat K] [--save-route FILE] [--save-design FILE] "
               "[--skew] [--metrics-out FILE] [--trace-out FILE] "
               "[--log-format text|json] [--help]\n");
}

/// Per-phase wall-time table: every phase of the pipeline with its own
/// time, its share of the routing total, and the exec/ activity inside it.
void print_phase_times(const bgr::RouteOutcome& outcome) {
  double total = 0.0;
  for (const bgr::PhaseStats& ph : outcome.phases) total += ph.seconds;
  std::printf("phase times (routing total %.3fs):\n", total);
  for (const bgr::PhaseStats& ph : outcome.phases) {
    const double share = total > 0.0 ? 100.0 * ph.seconds / total : 0.0;
    std::printf("  %-16s %8.3fs %5.1f%%  regions %5lld  chunks %7lld\n",
                ph.name.c_str(), ph.seconds, share,
                static_cast<long long>(ph.exec_regions),
                static_cast<long long>(ph.exec_chunks));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgr;
  using cli::parse_int_option;
  if (argc == 2 && std::strcmp(argv[1], "--help") == 0) {
    usage(stdout);
    return cli::kExitOk;
  }
  if (argc < 2) {
    usage(stderr);
    return cli::kExitUsage;
  }

  std::string input = argv[1];
  if (input == "--help") {
    usage(stdout);
    return cli::kExitOk;
  }
  if (input.size() > 1 && input[0] == '-') {
    std::fprintf(stderr,
                 "error: expected a design file or @dataset first, "
                 "got option '%s'\n",
                 input.c_str());
    usage(stderr);
    return cli::kExitUsage;
  }
  RouterOptions options;
  bool constrained = true;
  bool capacity_search = false;
  bool print_skew = false;
  bool print_map = false;
  bool run_verify = false;
  bool print_stats_flag = false;
  int repeat = 1;
  std::string svg_path;
  std::string save_route_path;
  std::string save_design_path;
  std::string metrics_out_path;
  std::string trace_out_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--unconstrained") {
      constrained = false;
    } else if (arg == "--rc") {
      options.delay_model = DelayModel::kElmoreRC;
    } else if (arg == "--sequential") {
      options.concurrent_initial = false;
    } else if (arg == "--incremental-sta" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "on") {
        options.incremental_sta = true;
      } else if (mode == "off") {
        options.incremental_sta = false;
      } else {
        std::fprintf(stderr, "error: --incremental-sta must be on or off\n");
        return cli::kExitUsage;
      }
    } else if (arg == "--shard-deletion" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "on") {
        options.shard_deletion = true;
      } else if (mode == "off") {
        options.shard_deletion = false;
      } else {
        std::fprintf(stderr, "error: --shard-deletion must be on or off\n");
        return cli::kExitUsage;
      }
    } else if (arg == "--path-search" && i + 1 < argc) {
      std::size_t choice = 0;
      if (!cli::parse_choice_option("--path-search", argv[++i],
                                    {"astar", "dijkstra", "steiner"},
                                    &choice)) {
        return cli::kExitUsage;
      }
      options.path_search = choice == 0   ? PathSearchBackend::kAstar
                            : choice == 1 ? PathSearchBackend::kDijkstra
                                          : PathSearchBackend::kSteiner;
    } else if (arg == "--lookahead" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "exact") {
        options.lookahead = LookaheadMode::kExact;
      } else if (mode == "map") {
        options.lookahead = LookaheadMode::kMap;
      } else {
        std::fprintf(stderr, "error: --lookahead must be exact or map\n");
        return cli::kExitUsage;
      }
    } else if (arg == "--min-capacity-search") {
      capacity_search = true;
    } else if (arg == "--no-improve") {
      options.enable_violation_recovery = false;
      options.enable_delay_improvement = false;
      options.enable_area_improvement = false;
    } else if (arg == "--threads") {
      const char* value = i + 1 < argc ? argv[++i] : nullptr;
      if (!parse_int_option("--threads", value, 0, 1024, &options.threads)) {
        return cli::kExitUsage;
      }
    } else if (arg == "--repeat") {
      const char* value = i + 1 < argc ? argv[++i] : nullptr;
      std::int32_t repeat32 = 1;
      if (!parse_int_option("--repeat", value, 1, 100000, &repeat32)) {
        return cli::kExitUsage;
      }
      repeat = repeat32;
    } else if (arg == "--skew") {
      print_skew = true;
    } else if (arg == "--map") {
      print_map = true;
    } else if (arg == "--verify") {
      run_verify = true;
    } else if (arg == "--stats") {
      print_stats_flag = true;
    } else if (arg == "--svg" && i + 1 < argc) {
      svg_path = argv[++i];
    } else if (arg == "--save-route" && i + 1 < argc) {
      save_route_path = argv[++i];
    } else if (arg == "--save-design" && i + 1 < argc) {
      save_design_path = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out_path = argv[++i];
    } else if (arg == "--log-format" && i + 1 < argc) {
      if (!cli::parse_log_format_option(argv[++i])) return cli::kExitUsage;
    } else if (arg == "--help") {
      usage(stdout);
      return cli::kExitOk;
    } else {
      return cli::unknown_option(arg.c_str(), usage);
    }
  }

  try {
    auto load = [&]() {
      return input.rfind('@', 0) == 0 ? make_dataset(input.substr(1))
                                      : load_design(input);
    };

    if (capacity_search) {
      MetricsRegistry::global().reset();
      Dataset d = load();
      std::printf("design %s: %d cells, %d nets, %zu constraints "
                  "(threads %d)\n",
                  d.name.c_str(), d.netlist.cell_count(),
                  d.netlist.net_count(), d.constraints.size(),
                  options.threads == 0 ? bgr::ExecContext::hardware_threads()
                                       : options.threads);
      options.use_constraints = constrained;
      Stopwatch watch;
      const CapacitySearchResult result = min_capacity_search(
          d.netlist, d.placement, d.tech, d.constraints, options);
      const double seconds = watch.seconds();
      for (const CapacityProbe& probe : result.probes) {
        std::printf("probe W=%-4d max tracks %4d  reroute passes %d  "
                    "verify errors %d  -> %s\n",
                    probe.tracks, probe.max_tracks, probe.reroute_passes,
                    probe.verify_errors,
                    probe.feasible ? "feasible" : "infeasible");
      }
      std::printf("minimum capacity: %d tracks (unconstrained %d, "
                  "%zu probes, %.2f s)\n",
                  result.min_tracks, result.unconstrained_tracks,
                  result.probes.size(), seconds);
      if (!metrics_out_path.empty()) {
        make_capacity_report(d.name, constrained, result, seconds)
            .save(metrics_out_path);
        std::printf("run report written to %s\n", metrics_out_path.c_str());
      }
      return cli::kExitOk;
    }

    // The router inserts feed cells into the netlist it routes, so every
    // repeat starts from a freshly loaded design.
    std::unique_ptr<Dataset> design;
    std::unique_ptr<GlobalRouter> router;
    std::unique_ptr<ChannelStage> channel;
    RouteOutcome outcome;
    double delay = 0.0;
    double best_seconds = 0.0;
    double last_seconds = 0.0;
    if (!trace_out_path.empty()) Trace::global().enable();
    for (int run = 0; run < repeat; ++run) {
      // Counters reset per repetition so --metrics-out reports the final
      // run alone, keeping the semantic section comparable across runs.
      MetricsRegistry::global().reset();
      channel.reset();  // tear down dependents before their design
      router.reset();
      design = std::make_unique<Dataset>(load());
      if (run == 0) {
        std::printf("design %s: %d cells, %d nets, %zu constraints "
                    "(threads %d)\n",
                    design->name.c_str(), design->netlist.cell_count(),
                    design->netlist.net_count(), design->constraints.size(),
                    options.threads == 0 ? bgr::ExecContext::hardware_threads()
                                         : options.threads);
      }
      options.use_constraints = constrained;
      Stopwatch watch;
      router = std::make_unique<GlobalRouter>(
          design->netlist, std::move(design->placement), design->tech,
          design->constraints, options);
      outcome = router->run();
      channel = std::make_unique<ChannelStage>(*router);
      channel->run();
      delay = channel->apply_and_critical_delay_ps(router->delay_graph(),
                                                   options.delay_model);
      const double seconds = watch.seconds();
      best_seconds = run == 0 ? seconds : std::min(best_seconds, seconds);
      last_seconds = seconds;

      if (repeat > 1) {
        std::printf("run %d/%d: %.3fs (routing phases %.3fs)\n", run + 1,
                    repeat, seconds, [&] {
                      double t = 0.0;
                      for (const PhaseStats& ph : outcome.phases)
                        t += ph.seconds;
                      return t;
                    }());
      }
      if (run + 1 == repeat) {
        for (const PhaseStats& ph : outcome.phases) {
          std::printf(
              "phase %-16s deletions %6lld reroutes %5lld crit %8.1f ps "
              "sumCM %6lld dirty %8lld relax %9lld pops %10lld\n",
              ph.name.c_str(), static_cast<long long>(ph.deletions),
              static_cast<long long>(ph.reroutes), ph.critical_delay_ps,
              static_cast<long long>(ph.sum_max_density),
              static_cast<long long>(ph.sta_dirty_vertices),
              static_cast<long long>(ph.sta_relaxations),
              static_cast<long long>(ph.path_pops));
        }
        print_phase_times(outcome);
        std::printf("feed cells added %d (chip +%d pitches)\n",
                    outcome.feed_cells_added, outcome.widen_pitches);
        std::printf("result: delay %.1f ps, area %.4f mm2, length %.2f mm, "
                    "violations %d, cpu %.2f s%s\n",
                    delay, channel->chip_area_mm2(),
                    channel->total_detailed_length_um() / 1000.0,
                    outcome.violated_constraints, seconds,
                    repeat > 1 ? " (last run)" : "");
        if (repeat > 1) {
          std::printf("best of %d runs: %.3f s\n", repeat, best_seconds);
        }
      }
    }

    if (!metrics_out_path.empty()) {
      RunReportInfo info;
      info.design = design->name;
      info.constrained = constrained;
      info.detailed_delay_ps = delay;
      info.wall_seconds = last_seconds;
      make_run_report(*router, *channel, outcome, info).save(metrics_out_path);
      std::printf("run report written to %s\n", metrics_out_path.c_str());
    }
    if (!trace_out_path.empty()) {
      Trace::global().save(trace_out_path);
      std::printf("trace written to %s\n", trace_out_path.c_str());
    }
    if (print_map) {
      std::printf("\nchip map ('#' logic, '.' feed, 'O' pad):\n");
      render_placement(std::cout, design->netlist, router->placement());
      std::printf("\nchannel congestion (relative to each channel's C_M):\n");
      render_congestion(std::cout, *router);
    }
    if (print_skew) {
      for (const ClockNetSkew& entry : clock_skew_report(*router)) {
        std::printf("clock %-10s pitch %d fanout %3d skew %6.2f ps "
                    "(at 1 pitch it would be %6.2f ps)\n",
                    entry.name.c_str(), entry.pitch_width, entry.fanout,
                    entry.skew_ps(), entry.skew_1pitch_ps);
      }
    }
    if (print_stats_flag) {
      print_stats(std::cout, collect_stats(*router, *channel));
    }
    if (run_verify) {
      const RouteVerifier verifier(*router, channel.get());
      const auto issues = verifier.run();
      if (issues.empty()) {
        std::printf("verify: clean (no findings)\n");
      }
      for (const VerifyIssue& issue : issues) {
        std::printf("verify %s [%s]: %s\n",
                    issue.severity == VerifyIssue::Severity::kError ? "ERROR"
                                                                    : "warn ",
                    issue.check.c_str(), issue.message.c_str());
      }
      if (RouteVerifier::has_errors(issues)) return cli::kExitFailure;
    }
    if (!svg_path.empty()) {
      write_svg(svg_path, *router, *channel);
      std::printf("SVG drawing written to %s\n", svg_path.c_str());
    }
    if (!save_route_path.empty()) {
      save_route(save_route_path, *router, *channel);
      std::printf("routed result written to %s\n", save_route_path.c_str());
    }
    if (!save_design_path.empty()) {
      Dataset routed{design->name, design->spec, design->netlist,
                     router->placement(), design->constraints, design->tech};
      save_design(save_design_path, routed);
      std::printf("design written to %s\n", save_design_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return cli::kExitFailure;
  }
  return cli::kExitOk;
}

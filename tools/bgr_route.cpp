// Command-line front end to the router: routes a `bgr-design 1` file (or a
// built-in dataset given as @NAME) and reports delay, area, length and the
// per-phase statistics; optionally saves the routed result.
//
//   bgr_route <design.txt | @C1P1> [options]
//     --unconstrained     drop the path constraints (area-only baseline)
//     --rc                use the Elmore RC delay model extension
//     --sequential        sequential (net-at-a-time) initial routing
//     --no-improve        skip the §3.5 improvement phases
//     --save-route FILE   write the routed trees/tracks (bgr-route 1)
//     --save-design FILE  write the (possibly feed-cell-extended) design
//     --skew              print the multi-pitch clock skew report
//     --map               render the chip map and congestion chart
//     --svg FILE          draw the routed chip as an SVG
//     --verify            run the signoff checks on the result
//     --stats             print design statistics
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "bgr/channel/channel_router.hpp"
#include "bgr/io/design_io.hpp"
#include "bgr/io/route_io.hpp"
#include "bgr/io/ascii_art.hpp"
#include "bgr/channel/geometry.hpp"
#include "bgr/verify/verifier.hpp"
#include "bgr/metrics/skew.hpp"
#include "bgr/metrics/report.hpp"
#include "bgr/common/stopwatch.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: bgr_route <design.txt | @C1P1> [--unconstrained] "
               "[--rc] [--sequential] [--no-improve] [--save-route FILE] "
               "[--save-design FILE] [--skew]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgr;
  if (argc < 2) {
    usage();
    return 2;
  }

  std::string input = argv[1];
  RouterOptions options;
  bool constrained = true;
  bool print_skew = false;
  bool print_map = false;
  bool run_verify = false;
  bool print_stats_flag = false;
  std::string svg_path;
  std::string save_route_path;
  std::string save_design_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--unconstrained") {
      constrained = false;
    } else if (arg == "--rc") {
      options.delay_model = DelayModel::kElmoreRC;
    } else if (arg == "--sequential") {
      options.concurrent_initial = false;
    } else if (arg == "--no-improve") {
      options.enable_violation_recovery = false;
      options.enable_delay_improvement = false;
      options.enable_area_improvement = false;
    } else if (arg == "--skew") {
      print_skew = true;
    } else if (arg == "--map") {
      print_map = true;
    } else if (arg == "--verify") {
      run_verify = true;
    } else if (arg == "--stats") {
      print_stats_flag = true;
    } else if (arg == "--svg" && i + 1 < argc) {
      svg_path = argv[++i];
    } else if (arg == "--save-route" && i + 1 < argc) {
      save_route_path = argv[++i];
    } else if (arg == "--save-design" && i + 1 < argc) {
      save_design_path = argv[++i];
    } else {
      usage();
      return 2;
    }
  }

  try {
    Dataset design = input.rfind('@', 0) == 0 ? make_dataset(input.substr(1))
                                              : load_design(input);
    std::printf("design %s: %d cells, %d nets, %zu constraints\n",
                design.name.c_str(), design.netlist.cell_count(),
                design.netlist.net_count(), design.constraints.size());

    options.use_constraints = constrained;
    Stopwatch watch;
    GlobalRouter router(design.netlist, std::move(design.placement),
                        design.tech, design.constraints, options);
    const RouteOutcome outcome = router.run();
    ChannelStage channel(router);
    channel.run();
    const double delay = channel.apply_and_critical_delay_ps(
        router.delay_graph(), options.delay_model);
    const double seconds = watch.seconds();

    for (const PhaseStats& ph : outcome.phases) {
      std::printf("phase %-16s deletions %6lld reroutes %5lld crit %8.1f ps "
                  "sumCM %6lld (%.2fs)\n",
                  ph.name.c_str(), static_cast<long long>(ph.deletions),
                  static_cast<long long>(ph.reroutes), ph.critical_delay_ps,
                  static_cast<long long>(ph.sum_max_density), ph.seconds);
    }
    std::printf("feed cells added %d (chip +%d pitches)\n",
                outcome.feed_cells_added, outcome.widen_pitches);
    std::printf("result: delay %.1f ps, area %.4f mm2, length %.2f mm, "
                "violations %d, cpu %.2f s\n",
                delay, channel.chip_area_mm2(),
                channel.total_detailed_length_um() / 1000.0,
                outcome.violated_constraints, seconds);

    if (print_map) {
      std::printf("\nchip map ('#' logic, '.' feed, 'O' pad):\n");
      render_placement(std::cout, design.netlist, router.placement());
      std::printf("\nchannel congestion (relative to each channel's C_M):\n");
      render_congestion(std::cout, router);
    }
    if (print_skew) {
      for (const ClockNetSkew& entry : clock_skew_report(router)) {
        std::printf("clock %-10s pitch %d fanout %3d skew %6.2f ps "
                    "(at 1 pitch it would be %6.2f ps)\n",
                    entry.name.c_str(), entry.pitch_width, entry.fanout,
                    entry.skew_ps(), entry.skew_1pitch_ps);
      }
    }
    if (print_stats_flag) {
      print_stats(std::cout, collect_stats(router, channel));
    }
    if (run_verify) {
      const RouteVerifier verifier(router, &channel);
      const auto issues = verifier.run();
      if (issues.empty()) {
        std::printf("verify: clean (no findings)\n");
      }
      for (const VerifyIssue& issue : issues) {
        std::printf("verify %s [%s]: %s\n",
                    issue.severity == VerifyIssue::Severity::kError ? "ERROR"
                                                                    : "warn ",
                    issue.check.c_str(), issue.message.c_str());
      }
      if (RouteVerifier::has_errors(issues)) return 1;
    }
    if (!svg_path.empty()) {
      write_svg(svg_path, router, channel);
      std::printf("SVG drawing written to %s\n", svg_path.c_str());
    }
    if (!save_route_path.empty()) {
      save_route(save_route_path, router, channel);
      std::printf("routed result written to %s\n", save_route_path.c_str());
    }
    if (!save_design_path.empty()) {
      Dataset routed{design.name, design.spec, design.netlist,
                     router.placement(), design.constraints, design.tech};
      save_design(save_design_path, routed);
      std::printf("design written to %s\n", save_design_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

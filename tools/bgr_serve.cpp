// Routing-as-a-service daemon: accepts NDJSON route jobs on stdin (and an
// optional loopback TCP socket), runs them concurrently on one shared
// worker pool with warm per-design caches, and streams one NDJSON
// response per event back to the submitting client (DESIGN.md §12).
//
//   bgr_serve [options]
//     --threads N         total compute threads (0 = hardware); N jobs
//                         co-tenant on one pool of N-1 workers — each
//                         job's result is bit-identical to a solo run
//     --jobs K            jobs in flight at once (default 2)
//     --queue K           admission bound on queued jobs (default 64)
//     --port P            also listen on loopback TCP port P (0 picks an
//                         ephemeral port, reported in the ready event)
//     --admin-port P      loopback HTTP telemetry endpoint (GET /metrics,
//                         /healthz, /readyz); 0 picks an ephemeral port,
//                         reported in the ready event as "admin_port"
//     --metrics-out FILE  write the final "bgr_serve" run report (JSON)
//     --trace-out FILE    write a Chrome trace (one phase span per job
//                         phase, names carry the job's trace id)
//     --log-format {text,json}
//                         diagnostic log sink format (default text)
//
// Requests (one JSON object per line):
//   {"id":"j1","dataset":"C1P1","options":{"rc":true},"report":true}
//   {"id":"j2","design":"bgr-design 1\n...","verify":true}
//   {"cancel":"j1"}   {"ping":true}   {"shutdown":true}
//
// The daemon exits 0 on {"shutdown":true} or end of stdin, after running
// out everything already admitted.
#include <cstring>
#include <iostream>

#include "bgr/exec/exec_context.hpp"
#include "bgr/serve/server.hpp"
#include "cli_common.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: bgr_serve [--threads N] [--jobs K] [--queue K] "
               "[--port P] [--admin-port P] [--metrics-out FILE] "
               "[--trace-out FILE] [--log-format text|json] [--help]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgr;
  using cli::parse_int_option;

  serve::ServerConfig config;
  std::int32_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--threads") == 0) {
      if (!parse_int_option("--threads", next_value(), 0, 1024, &threads)) {
        return cli::kExitUsage;
      }
    } else if (std::strcmp(arg, "--jobs") == 0) {
      if (!parse_int_option("--jobs", next_value(), 1, 256,
                            &config.scheduler.max_jobs)) {
        return cli::kExitUsage;
      }
    } else if (std::strcmp(arg, "--queue") == 0) {
      if (!parse_int_option("--queue", next_value(), 1, 1 << 20,
                            &config.scheduler.queue_capacity)) {
        return cli::kExitUsage;
      }
    } else if (std::strcmp(arg, "--port") == 0) {
      if (!parse_int_option("--port", next_value(), 0, 65535,
                            &config.tcp_port)) {
        return cli::kExitUsage;
      }
    } else if (std::strcmp(arg, "--admin-port") == 0) {
      if (!parse_int_option("--admin-port", next_value(), 0, 65535,
                            &config.admin_port)) {
        return cli::kExitUsage;
      }
    } else if (std::strcmp(arg, "--metrics-out") == 0) {
      const char* value = next_value();
      if (value == nullptr) return cli::missing_value("--metrics-out");
      config.metrics_out = value;
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      const char* value = next_value();
      if (value == nullptr) return cli::missing_value("--trace-out");
      config.trace_out = value;
    } else if (std::strcmp(arg, "--log-format") == 0) {
      if (!cli::parse_log_format_option(next_value())) {
        return cli::kExitUsage;
      }
    } else if (std::strcmp(arg, "--help") == 0) {
      usage(stdout);
      return cli::kExitOk;
    } else {
      return cli::unknown_option(arg, usage);
    }
  }

  // The runner thread of each job participates in its parallel regions,
  // so a budget of N compute threads means N-1 pool workers; 1 thread
  // runs everything serially (no pool at all).
  if (threads == 0) threads = ExecContext::hardware_threads();
  config.scheduler.pool_workers = threads > 1 ? threads - 1 : 0;

  try {
    serve::Server server(std::move(config));
    return server.run(std::cin, std::cout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return cli::kExitFailure;
  }
}

#!/usr/bin/env python3
"""Validate bgr run reports (--metrics-out) and trace files (--trace-out).

Checks the layout contract documented in src/bgr/obs/run_report.hpp:

  check_run_report.py report.json
      Schema check: schema_version, kind, metrics split by scope; for
      kind "bgr_route" additionally the design/options/result/stats/
      phases/run sections.

  check_run_report.py report.json --trace trace.json
      Also validates the Chrome trace-event file: well-formed JSON, every
      'X' event carries non-negative ts/dur, events are emitted in
      non-decreasing timestamp order, and spans nest strictly per thread
      (no partial overlap).

  check_run_report.py report.json --compare-semantic other.json
      Determinism check: after stripping the "run" section, every "wall"
      sub-object and "metrics.nondeterministic", the two reports must be
      byte-for-byte identical. Used by CI to compare --threads 1 vs N.

  check_run_report.py report.json --serve-events events.ndjson
      Also validates a captured bgr_serve NDJSON response stream: every
      line parses, ts_us is present and non-decreasing, seq is present
      and strictly increasing, and every job lifecycle event
      (accepted/started/done/cancelled/failed) carries a trace id.

Exit status 0 on success; 1 with a diagnostic on the first failure.
"""

import argparse
import json
import re
import sys

SCHEMA_VERSION = 1
ROUTE_SECTIONS = ("design", "options", "result", "stats", "phases", "run")
# Semantic counters every routed report must carry, whatever the backend.
# The cache counters register (at zero) even under the Dijkstra backend;
# the A*-only bucket metrics are deliberately not on this list.
ROUTE_SEMANTIC_METRICS = (
    "route.deleted_edges",
    "route.graphs_built",
    "path.searches",
    "path.pops",
    "path.relaxations",
    "path.cache_builds",
    "path.cache_hits",
    "path.cone_repairs",
    "lookahead.builds",
    "lookahead.derivations",
    "lookahead.vertices",
    "sta.full_sweeps",
    "shard.components",
    "shard.commits",
    "shard.fallbacks",
    "shard.nets",
    # Cost-distance steiner construction (DESIGN.md §16); registered at
    # zero by every router, live only under --path-search steiner.
    "steiner.trees",
    "steiner.sink_paths",
    "steiner.pops",
    "steiner.relaxations",
    "steiner.cache_hits",
)
# The scale bench (bench_scale) routes a block-structured preset and
# records the deletion loop's shard decomposition alongside throughput.
SCALE_SECTIONS = ("design", "route", "shards", "result", "run")
SCALE_SHARD_FIELDS = ("count", "scan_work", "commits", "lpt")
SCALE_RESULT_FIELDS = ("nets_per_second_floor", "parallel_ratio_8",
                       "sharded", "pass")
# The capacity bench (bench_capacity / bgr_route --min-capacity-search)
# records the binary search's full probe transcript.
CAPACITY_SECTIONS = ("design", "options", "capacity", "run")
CAPACITY_PROBE_FIELDS = ("tracks", "feasible", "max_tracks",
                         "reroute_passes", "verify_errors")
# The steiner bench (bench_steiner) routes each preset once per backend
# and records the delay/area front plus the dominance/identity gates.
STEINER_SECTIONS = ("designs", "result", "run")
STEINER_MODE_FIELDS = ("backend", "critical_delay_ps", "total_length_um",
                       "worst_margin_ps", "violated_constraints")
STEINER_RESULT_FIELDS = ("identical_ok", "dominance_ok", "counters_ok")
# Daemon reports ("bgr_serve" and the in-process "bench.serve") carry the
# serve/totals sections plus the admission/cache/cancellation counters —
# all semantic: for a given request stream they are functions of the
# submitted contents and configured bounds, never of scheduling.
SERVE_KINDS = ("bgr_serve", "bench.serve")
SERVE_SECTIONS = ("serve", "totals", "run")
SERVE_SEMANTIC_METRICS = (
    "serve.jobs_accepted",
    "serve.jobs_rejected",
    "serve.jobs_completed",
    "serve.jobs_failed",
    "serve.cache_hits",
    "serve.cache_misses",
    "serve.cancellations",
)


def fail(msg):
    print(f"check_run_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_metrics(report, path):
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{path}: missing 'metrics' object")
    for scope in ("semantic", "nondeterministic"):
        if not isinstance(metrics.get(scope), dict):
            fail(f"{path}: metrics.{scope} missing or not an object")
        for name, value in metrics[scope].items():
            if isinstance(value, int):
                continue  # counter
            if isinstance(value, dict):  # histogram
                for field in ("count", "sum", "min", "max", "buckets"):
                    if field not in value:
                        fail(f"{path}: histogram {name} lacks '{field}'")
                continue
            fail(f"{path}: metric {name} is neither counter nor histogram")


def check_report(report, path):
    if report.get("schema_version") != SCHEMA_VERSION:
        fail(f"{path}: schema_version {report.get('schema_version')!r}, "
             f"expected {SCHEMA_VERSION}")
    kind = report.get("kind")
    if not isinstance(kind, str) or not kind:
        fail(f"{path}: missing 'kind'")
    check_metrics(report, path)
    if kind == "bgr_route":
        for section in ROUTE_SECTIONS:
            if section not in report:
                fail(f"{path}: missing '{section}' section")
        for name in ROUTE_SEMANTIC_METRICS:
            if name not in report["metrics"]["semantic"]:
                fail(f"{path}: metrics.semantic lacks '{name}'")
        for option in ("path_search", "lookahead"):
            if option not in report["options"]:
                fail(f"{path}: options lacks '{option}'")
        if not isinstance(report["phases"], list) or not report["phases"]:
            fail(f"{path}: 'phases' must be a non-empty array")
        for ph in report["phases"]:
            if "name" not in ph or "wall" not in ph:
                fail(f"{path}: phase entry lacks name/wall: {ph}")
    if kind == "bench.scale":
        for section in SCALE_SECTIONS:
            if section not in report:
                fail(f"{path}: missing '{section}' section")
        for name in ROUTE_SEMANTIC_METRICS:
            if name not in report["metrics"]["semantic"]:
                fail(f"{path}: metrics.semantic lacks '{name}'")
        shards = report["shards"]
        for field in SCALE_SHARD_FIELDS:
            if field not in shards:
                fail(f"{path}: shards.{field} missing")
        if not isinstance(shards["lpt"], list) or not shards["lpt"]:
            fail(f"{path}: shards.lpt must be a non-empty array")
        for entry in shards["lpt"]:
            for field in ("workers", "makespan", "work_ratio"):
                if field not in entry:
                    fail(f"{path}: shards.lpt entry lacks '{field}': {entry}")
        result = report["result"]
        for field in SCALE_RESULT_FIELDS:
            if field not in result:
                fail(f"{path}: result.{field} missing")
        # The decomposition's counters must be self-consistent with the
        # registry: shard.components counts one increment per sharded run.
        if shards["count"] >= 0 and shards["scan_work"] < shards["commits"]:
            fail(f"{path}: shards.scan_work < shards.commits")
    if kind == "bench.capacity":
        for section in CAPACITY_SECTIONS:
            if section not in report:
                fail(f"{path}: missing '{section}' section")
        capacity = report["capacity"]
        for field in ("min_tracks", "unconstrained_tracks", "probes"):
            if field not in capacity:
                fail(f"{path}: capacity.{field} missing")
        probes = capacity["probes"]
        if not isinstance(probes, list) or not probes:
            fail(f"{path}: capacity.probes must be a non-empty array")
        for probe in probes:
            for field in CAPACITY_PROBE_FIELDS:
                if field not in probe:
                    fail(f"{path}: probe lacks '{field}': {probe}")
        # The unconstrained probe leads the transcript and bounds the
        # search: the answer must land inside [1, unconstrained].
        if probes[0]["tracks"] != capacity["unconstrained_tracks"]:
            fail(f"{path}: first probe is not the unconstrained bound")
        if not 1 <= capacity["min_tracks"] <= capacity["unconstrained_tracks"]:
            fail(f"{path}: min_tracks outside [1, unconstrained_tracks]")
    if kind == "bench.steiner":
        for section in STEINER_SECTIONS:
            if section not in report:
                fail(f"{path}: missing '{section}' section")
        designs = report["designs"]
        if not isinstance(designs, list) or not designs:
            fail(f"{path}: 'designs' must be a non-empty array")
        for row in designs:
            if "name" not in row:
                fail(f"{path}: design row lacks 'name': {row}")
            modes = row.get("modes")
            if not isinstance(modes, list) or not modes:
                fail(f"{path}: designs[{row.get('name')!r}].modes must be "
                     f"a non-empty array")
            for entry in modes:
                for field in STEINER_MODE_FIELDS:
                    if field not in entry:
                        fail(f"{path}: mode entry lacks '{field}': {entry}")
        result = report["result"]
        for field in STEINER_RESULT_FIELDS:
            if field not in result:
                fail(f"{path}: result.{field} missing")
        for name in ("steiner.trees", "steiner.sink_paths",
                     "steiner.cache_hits"):
            if name not in report["metrics"]["semantic"]:
                fail(f"{path}: metrics.semantic lacks '{name}'")
    if kind in SERVE_KINDS:
        for section in SERVE_SECTIONS:
            if section not in report:
                fail(f"{path}: missing '{section}' section")
        for name in SERVE_SEMANTIC_METRICS:
            if name not in report["metrics"]["semantic"]:
                fail(f"{path}: metrics.semantic lacks '{name}'")
        totals = report["totals"]
        for field in ("jobs_accepted", "jobs_completed", "cache_hits",
                      "cache_misses"):
            if not isinstance(totals.get(field), int):
                fail(f"{path}: totals.{field} missing or not an integer")


def strip_nondeterministic(node):
    """Removes the "run" section, "wall" sub-objects and the
    nondeterministic metric scope, recursively."""
    if isinstance(node, dict):
        return {
            k: strip_nondeterministic(v)
            for k, v in node.items()
            if k not in ("run", "wall", "nondeterministic")
        }
    if isinstance(node, list):
        return [strip_nondeterministic(v) for v in node]
    return node


def diff_paths(a, b, prefix=""):
    if isinstance(a, dict) and isinstance(b, dict):
        out = []
        for k in sorted(set(a) | set(b)):
            if k not in a or k not in b:
                out.append(f"{prefix}/{k} (only in one report)")
            else:
                out.extend(diff_paths(a[k], b[k], f"{prefix}/{k}"))
        return out
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return [f"{prefix} (length {len(a)} vs {len(b)})"]
        out = []
        for i, (x, y) in enumerate(zip(a, b)):
            out.extend(diff_paths(x, y, f"{prefix}[{i}]"))
        return out
    return [] if a == b else [f"{prefix} ({a!r} vs {b!r})"]


def check_compare(path_a, path_b):
    a = strip_nondeterministic(load(path_a))
    b = strip_nondeterministic(load(path_b))
    if a != b:
        diffs = diff_paths(a, b)
        for d in diffs[:20]:
            print(f"  semantic mismatch at {d}", file=sys.stderr)
        fail(f"{path_a} and {path_b} differ semantically "
             f"({len(diffs)} paths)")


def check_trace(path):
    trace = load(path)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing or empty 'traceEvents'")
    per_tid = {}
    last_ts = None
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            fail(f"{path}: event {i} has unexpected ph {ph!r}")
        for field in ("name", "cat", "ts", "dur", "pid", "tid"):
            if field not in ev:
                fail(f"{path}: event {i} lacks '{field}'")
        ts, dur = ev["ts"], ev["dur"]
        if ts < 0 or dur < 0:
            fail(f"{path}: event {i} has negative ts/dur")
        if last_ts is not None and ts < last_ts:
            fail(f"{path}: event {i} breaks timestamp order "
                 f"({ts} after {last_ts})")
        last_ts = ts
        per_tid.setdefault(ev["tid"], []).append((ts, ts + dur, ev["name"], i))
    # Spans on one thread must nest strictly: a span that starts inside
    # another must also end inside it.
    for tid, spans in per_tid.items():
        stack = []
        for start, end, name, i in spans:  # already in ts order
            while stack and stack[-1][1] <= start:
                stack.pop()
            if stack and end > stack[-1][1]:
                fail(f"{path}: tid {tid} span '{name}' (event {i}, "
                     f"[{start},{end}]) partially overlaps "
                     f"'{stack[-1][2]}' [{stack[-1][0]},{stack[-1][1]}]")
            stack.append((start, end, name))
    print(f"check_run_report: trace OK ({path}: {len(events)} events, "
          f"{len(per_tid)} threads)")


LIFECYCLE_EVENTS = ("accepted", "started", "done", "cancelled", "failed")
TRACE_ID_RE = re.compile(r"^t-[0-9a-f]+$")


def check_serve_events(path):
    try:
        with open(path, encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln]
    except OSError as e:
        fail(f"{path}: {e}")
    if not lines:
        fail(f"{path}: empty event stream")
    last_ts = None
    last_seq = None
    lifecycle = 0
    for i, line in enumerate(lines):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}: line {i} is not JSON: {e}")
        ts = event.get("ts_us")
        if not isinstance(ts, int) or ts < 0:
            fail(f"{path}: line {i} lacks a non-negative integer 'ts_us'")
        if last_ts is not None and ts < last_ts:
            fail(f"{path}: line {i} breaks ts_us order ({ts} after "
                 f"{last_ts})")
        last_ts = ts
        seq = event.get("seq")
        if not isinstance(seq, int):
            fail(f"{path}: line {i} lacks an integer 'seq'")
        if last_seq is not None and seq <= last_seq:
            fail(f"{path}: line {i} breaks seq order ({seq} after "
                 f"{last_seq})")
        last_seq = seq
        if event.get("event") in LIFECYCLE_EVENTS:
            lifecycle += 1
            trace = event.get("trace")
            if not isinstance(trace, str) or not TRACE_ID_RE.match(trace):
                fail(f"{path}: line {i} ({event.get('event')} for "
                     f"{event.get('id')!r}) lacks a valid trace id: "
                     f"{trace!r}")
    print(f"check_run_report: serve events OK ({path}: {len(lines)} "
          f"events, {lifecycle} lifecycle events with trace ids)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="run report JSON (--metrics-out)")
    parser.add_argument("--trace", help="trace-event JSON (--trace-out)")
    parser.add_argument("--serve-events", metavar="NDJSON",
                        help="captured bgr_serve response stream to check")
    parser.add_argument("--compare-semantic", metavar="OTHER",
                        help="second report that must match semantically")
    args = parser.parse_args()

    check_report(load(args.report), args.report)
    print(f"check_run_report: report OK ({args.report})")
    if args.trace:
        check_trace(args.trace)
    if args.serve_events:
        check_serve_events(args.serve_events)
    if args.compare_semantic:
        check_report(load(args.compare_semantic), args.compare_semantic)
        check_compare(args.report, args.compare_semantic)
        print("check_run_report: semantic sections identical")


if __name__ == "__main__":
    main()

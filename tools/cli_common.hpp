// Conventions shared by every bgr_* command-line tool, so the tools agree
// on exit codes and diagnostics:
//
//   - exit 0: success; exit 1: runtime failure (I/O, routing, verify
//     findings); exit 2: command-line usage error.
//   - `--help` prints the usage text to *stdout* and exits 0; a usage
//     error prints a one-line diagnostic plus the usage text to *stderr*
//     and exits 2.
//   - option values are parsed checked (bgr::parse_i32 & friends), never
//     with atoi: missing, non-numeric, trailing-garbage and out-of-range
//     values get a diagnostic naming the flag and the accepted range.
#pragma once

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <optional>
#include <string>

#include "bgr/common/log.hpp"
#include "bgr/common/parse.hpp"

namespace bgr::cli {

inline constexpr int kExitOk = 0;
inline constexpr int kExitFailure = 1;
inline constexpr int kExitUsage = 2;

/// Checked integer option value: rejects missing, non-numeric, trailing
/// garbage and out-of-range text with a clear diagnostic instead of the
/// old atoi behaviour (which silently read garbage as 0).
[[nodiscard]] inline bool parse_int_option(const char* flag, const char* text,
                                           std::int32_t lo, std::int32_t hi,
                                           std::int32_t* out) {
  const std::optional<std::int32_t> value =
      text != nullptr ? bgr::parse_i32(text) : std::nullopt;
  if (!value || *value < lo || *value > hi) {
    std::fprintf(stderr,
                 "error: %s expects an integer in [%d, %d], got '%s'\n", flag,
                 lo, hi, text != nullptr ? text : "<missing>");
    return false;
  }
  *out = *value;
  return true;
}

/// Checked enumeration option value: matches `text` against the accepted
/// spellings and writes the matching index to `out`. An unknown or missing
/// value gets a diagnostic that *lists every valid value*, so adding a new
/// engine/mode automatically fixes the error text of every tool using it.
[[nodiscard]] inline bool parse_choice_option(
    const char* flag, const char* text,
    std::initializer_list<const char*> choices, std::size_t* out) {
  const std::string value = text != nullptr ? text : "";
  std::size_t index = 0;
  for (const char* choice : choices) {
    if (value == choice) {
      *out = index;
      return true;
    }
    ++index;
  }
  std::string expected;
  index = 0;
  for (const char* choice : choices) {
    if (index > 0) {
      expected += index + 1 == choices.size() ? " or " : ", ";
    }
    expected += choice;
    ++index;
  }
  std::fprintf(stderr, "error: %s must be %s, got '%s'\n", flag,
               expected.c_str(), text != nullptr ? text : "<missing>");
  return false;
}

/// `--log-format {text,json}` — every tool that logs offers it with the
/// same spelling.
[[nodiscard]] inline bool parse_log_format_option(const char* text) {
  const std::string fmt = text != nullptr ? text : "";
  if (fmt == "text") {
    bgr::set_log_format(bgr::LogFormat::kText);
    return true;
  }
  if (fmt == "json") {
    bgr::set_log_format(bgr::LogFormat::kJson);
    return true;
  }
  std::fprintf(stderr, "error: --log-format must be text or json, got '%s'\n",
               text != nullptr ? text : "<missing>");
  return false;
}

/// Uniform unknown-option diagnostic; `usage` writes the tool's usage
/// text to the given stream. Returns kExitUsage for `return` chaining.
inline int unknown_option(const char* arg, void (*usage)(std::FILE*)) {
  std::fprintf(stderr, "error: unknown option '%s'\n", arg);
  usage(stderr);
  return kExitUsage;
}

/// Uniform missing-value diagnostic for `--flag VALUE` options.
inline int missing_value(const char* flag) {
  std::fprintf(stderr, "error: %s expects a value\n", flag);
  return kExitUsage;
}

}  // namespace bgr::cli
